//! Tick-time safety-invariant checking.
//!
//! The chaos experiments deliberately batter the system with faults; the
//! point of the exercise is that however degraded the *performance*
//! gets, the *safety* story must hold. The [`InvariantChecker`] encodes
//! that story as machine-checked predicates evaluated while the
//! simulation runs:
//!
//! * **Chain integrity** — the manager's recent chain is hash-linked
//!   with consecutive indices and intact Merkle roots,
//! * **Vehicle overlap** — no two non-crashed active vehicles occupy the
//!   same space (ground truth, independent of what any agent believes),
//! * **FSM consistency** — every benign vehicle's protocol state, guard
//!   flags and drive mode agree with each other,
//! * **Delivery order** — each receiver observes its messages in
//!   non-decreasing delivery-time order (the medium's reordering happens
//!   *before* delivery, never after).
//!
//! Violations accumulate into a structured [`InvariantReport`] instead
//! of panicking: a chaos sweep wants the full casualty list of a run,
//! not the first corpse.

use nwade_chain::Block;
use nwade_geometry::{GridIndex, Vec2};
use nwade_traffic::VehicleId;
use nwade_vanet::NodeId;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Which invariant was violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// The manager's chain broke a hash link, skipped an index, or
    /// carries a block whose Merkle root does not match its plans.
    ChainIntegrity,
    /// Two active, non-crashed vehicles overlap in space.
    VehicleOverlap,
    /// A vehicle's FSM state, guard flags and drive mode disagree.
    FsmConsistency,
    /// A receiver saw a message with a delivery timestamp earlier than a
    /// previously delivered one.
    DeliveryOrder,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One recorded violation.
#[derive(Debug, Clone)]
pub struct InvariantViolation {
    /// Simulation time of detection.
    pub time: f64,
    /// Violated invariant.
    pub kind: InvariantKind,
    /// Human-readable specifics.
    pub detail: String,
}

/// How many violations are kept verbatim; beyond this only counters
/// grow (a broken invariant usually repeats every tick).
const KEPT_VIOLATIONS: usize = 64;

/// The structured outcome of a run's invariant checking.
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    /// The first [`KEPT_VIOLATIONS`] violations, in detection order.
    pub violations: Vec<InvariantViolation>,
    /// Total count per kind (including dropped ones).
    pub counts: HashMap<InvariantKind, usize>,
}

impl InvariantReport {
    /// Total violations across all kinds.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// `true` when no invariant was ever violated.
    pub fn is_clean(&self) -> bool {
        self.counts.is_empty()
    }

    fn record(&mut self, time: f64, kind: InvariantKind, detail: String) {
        *self.counts.entry(kind).or_insert(0) += 1;
        if self.violations.len() < KEPT_VIOLATIONS {
            self.violations
                .push(InvariantViolation { time, kind, detail });
        }
    }
}

impl fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "all invariants held");
        }
        let mut kinds: Vec<_> = self.counts.iter().collect();
        kinds.sort_by_key(|(k, _)| format!("{k}"));
        for (i, (kind, count)) in kinds.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{kind}: {count}")?;
        }
        Ok(())
    }
}

/// Snapshot of one vehicle handed to the checker each tick.
#[derive(Debug, Clone)]
pub struct VehicleSnapshot {
    /// Vehicle id.
    pub id: VehicleId,
    /// World position.
    pub position: Vec2,
    /// `true` while inside the modeled area.
    pub active: bool,
    /// `true` for attack participants (their deviations are the *point*,
    /// not a bug).
    pub malicious: bool,
    /// Guard's `is_evacuating()`.
    pub evacuating: bool,
    /// FSM state is `SelfEvacuation`.
    pub state_self_evacuation: bool,
    /// Drive mode is `SelfEvacuate`.
    pub mode_self_evacuate: bool,
}

/// Accumulates invariant violations over a run.
#[derive(Debug, Clone, Default)]
pub struct InvariantChecker {
    report: InvariantReport,
    last_delivery: HashMap<NodeId, f64>,
    /// Overlapping pairs already reported (avoid one physical event
    /// flooding the report every tick).
    reported_overlaps: HashSet<(u64, u64)>,
    chain_broken: bool,
}

impl InvariantChecker {
    /// Fresh checker.
    pub fn new() -> Self {
        InvariantChecker::default()
    }

    /// The report so far (consume with [`InvariantChecker::finish`]).
    pub fn report(&self) -> &InvariantReport {
        &self.report
    }

    /// Takes the final report.
    pub fn finish(self) -> InvariantReport {
        self.report
    }

    /// Checks one delivered message's timestamp against the receiver's
    /// last one.
    pub fn note_delivery(&mut self, to: NodeId, at: f64, now: f64) {
        if let Some(prev) = self.last_delivery.get(&to) {
            if at < *prev - 1e-9 {
                self.report.record(
                    now,
                    InvariantKind::DeliveryOrder,
                    format!("{to} received a message stamped {at:.3} after one stamped {prev:.3}"),
                );
            }
        }
        let slot = self.last_delivery.entry(to).or_insert(at);
        if at > *slot {
            *slot = at;
        }
    }

    /// Verifies the manager-side chain: consecutive indices, intact hash
    /// links, and Merkle roots matching the carried plans. Reports once
    /// per run (a broken chain stays broken).
    pub fn check_chain(&mut self, blocks: &[Block], now: f64) {
        if self.chain_broken {
            return;
        }
        for b in blocks {
            if b.merkle_root() != b.computed_root() {
                self.chain_broken = true;
                self.report.record(
                    now,
                    InvariantKind::ChainIntegrity,
                    format!("block {} merkle root does not cover its plans", b.index()),
                );
                return;
            }
        }
        for pair in blocks.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if b.index() != a.index() + 1 {
                self.chain_broken = true;
                self.report.record(
                    now,
                    InvariantKind::ChainIntegrity,
                    format!("chain skips from index {} to {}", a.index(), b.index()),
                );
                return;
            }
            if b.prev_hash() != a.hash() {
                self.chain_broken = true;
                self.report.record(
                    now,
                    InvariantKind::ChainIntegrity,
                    format!("block {} does not link to block {}", b.index(), a.index()),
                );
                return;
            }
        }
    }

    /// Checks ground-truth vehicle separation and per-vehicle FSM
    /// consistency. `collided` holds pairs the physics layer already
    /// counted as accidents — those are known casualties, not fresh
    /// violations; `min_gap` is the center-to-center distance below
    /// which two vehicles count as overlapping.
    ///
    /// `grid` optionally narrows the overlap sweep to nearby candidates:
    /// it must index `vehicles` by position in slice order. Candidates
    /// come back in ascending index order and pass through the same
    /// strict `< min_gap` predicate, so the pairs found — and the order
    /// they are recorded in — match the all-pairs sweep exactly.
    pub fn check_vehicles(
        &mut self,
        vehicles: &[VehicleSnapshot],
        grid: Option<&GridIndex>,
        collided: &HashSet<(u64, u64)>,
        min_gap: f64,
        now: f64,
    ) {
        for v in vehicles {
            if v.malicious || !v.active {
                continue;
            }
            if v.evacuating != v.state_self_evacuation {
                self.report.record(
                    now,
                    InvariantKind::FsmConsistency,
                    format!(
                        "vehicle {}: guard evacuating={} but FSM self-evacuation={}",
                        v.id.raw(),
                        v.evacuating,
                        v.state_self_evacuation
                    ),
                );
            }
            if v.mode_self_evacuate && !v.evacuating {
                self.report.record(
                    now,
                    InvariantKind::FsmConsistency,
                    format!(
                        "vehicle {}: drives in self-evacuation without an evacuating guard",
                        v.id.raw()
                    ),
                );
            }
        }
        for (i, a) in vehicles.iter().enumerate() {
            if !a.active {
                continue;
            }
            let consider = |this: &mut Self, b: &VehicleSnapshot| {
                if !b.active {
                    return;
                }
                let key = (a.id.raw().min(b.id.raw()), a.id.raw().max(b.id.raw()));
                if collided.contains(&key) || this.reported_overlaps.contains(&key) {
                    return;
                }
                if a.position.distance(b.position) < min_gap {
                    this.reported_overlaps.insert(key);
                    this.report.record(
                        now,
                        InvariantKind::VehicleOverlap,
                        format!(
                            "vehicles {} and {} overlap (gap < {min_gap:.2} m)",
                            key.0, key.1
                        ),
                    );
                }
            };
            match grid {
                Some(grid) => {
                    // Query returns ascending indices; keeping only j > i
                    // walks the same (i, j) pairs the nested loop would.
                    for j in grid.query(a.position, min_gap) {
                        if j > i {
                            consider(self, &vehicles[j]);
                        }
                    }
                }
                None => {
                    for b in &vehicles[i + 1..] {
                        consider(self, b);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(id: u64, x: f64) -> VehicleSnapshot {
        VehicleSnapshot {
            id: VehicleId::new(id),
            position: Vec2::new(x, 0.0),
            active: true,
            malicious: false,
            evacuating: false,
            state_self_evacuation: false,
            mode_self_evacuate: false,
        }
    }

    #[test]
    fn delivery_order_violation_detected() {
        let mut c = InvariantChecker::new();
        c.note_delivery(NodeId::Vehicle(1), 1.0, 1.0);
        c.note_delivery(NodeId::Vehicle(1), 2.0, 2.0);
        assert!(c.report().is_clean());
        c.note_delivery(NodeId::Vehicle(1), 1.5, 2.5);
        assert_eq!(
            c.report().counts.get(&InvariantKind::DeliveryOrder),
            Some(&1)
        );
        // Distinct receivers have independent clocks.
        c.note_delivery(NodeId::Vehicle(2), 0.5, 2.6);
        assert_eq!(c.report().total(), 1);
    }

    #[test]
    fn overlap_reported_once_and_collisions_excluded() {
        let mut c = InvariantChecker::new();
        let vs = vec![snapshot(1, 0.0), snapshot(2, 0.5), snapshot(3, 100.0)];
        let collided = HashSet::new();
        c.check_vehicles(&vs, None, &collided, 2.0, 1.0);
        c.check_vehicles(&vs, None, &collided, 2.0, 1.1);
        assert_eq!(
            c.report().counts.get(&InvariantKind::VehicleOverlap),
            Some(&1),
            "same pair reported once"
        );
        // A pair the physics layer already counted as an accident is not
        // an invariant violation.
        let mut c = InvariantChecker::new();
        let collided: HashSet<_> = [(1, 2)].into_iter().collect();
        c.check_vehicles(&vs, None, &collided, 2.0, 1.0);
        assert!(c.report().is_clean());
    }

    #[test]
    fn fsm_inconsistency_detected() {
        let mut c = InvariantChecker::new();
        let mut v = snapshot(7, 0.0);
        v.mode_self_evacuate = true; // but guard not evacuating
        c.check_vehicles(&[v], None, &HashSet::new(), 2.0, 3.0);
        assert_eq!(
            c.report().counts.get(&InvariantKind::FsmConsistency),
            Some(&1)
        );
        // Malicious vehicles are exempt: their deviation is the attack.
        let mut c = InvariantChecker::new();
        let mut v = snapshot(8, 0.0);
        v.mode_self_evacuate = true;
        v.malicious = true;
        c.check_vehicles(&[v], None, &HashSet::new(), 2.0, 3.0);
        assert!(c.report().is_clean());
    }

    #[test]
    fn gridded_overlap_sweep_matches_all_pairs() {
        // A line of vehicles with several overlapping pairs; the gridded
        // sweep must record the same pairs in the same order.
        let vs: Vec<VehicleSnapshot> = (0..40).map(|i| snapshot(i, i as f64 * 1.1)).collect();
        let collided = HashSet::new();
        let mut brute = InvariantChecker::new();
        brute.check_vehicles(&vs, None, &collided, 2.0, 1.0);
        let points: Vec<Vec2> = vs.iter().map(|v| v.position).collect();
        let grid = GridIndex::build(2.0, &points);
        let mut gridded = InvariantChecker::new();
        gridded.check_vehicles(&vs, Some(&grid), &collided, 2.0, 1.0);
        let details = |c: &InvariantChecker| {
            c.report()
                .violations
                .iter()
                .map(|v| v.detail.clone())
                .collect::<Vec<_>>()
        };
        assert!(!brute.report().is_clean(), "fixture has overlaps");
        assert_eq!(details(&brute), details(&gridded));
    }

    #[test]
    fn report_is_bounded_but_counts_everything() {
        let mut c = InvariantChecker::new();
        for i in 0..200 {
            c.note_delivery(NodeId::Vehicle(9), 100.0, 100.0);
            c.note_delivery(NodeId::Vehicle(9), (200 - i) as f64, 100.0);
        }
        let r = c.finish();
        assert!(r.violations.len() <= 64);
        assert!(r.total() >= 100);
        assert!(!format!("{r}").is_empty());
    }
}
