//! Discrete-event traffic simulator for the NWADE reproduction.
//!
//! Integrates every substrate of the workspace into the experimental
//! platform of §VI: vehicles spawn from a Poisson process, request plans
//! from the intersection manager over a simulated VANET, verify the
//! travel-plan blockchain, watch their neighbours, and react to attacks
//! injected per Table I. The simulator collects the measurements behind
//! Table II and Figs. 4–8.
//!
//! # Example
//!
//! ```
//! use nwade_sim::{SimConfig, Simulation};
//!
//! let mut config = SimConfig::default();
//! config.duration = 60.0;
//! config.density = 40.0;
//! let report = Simulation::new(config).run();
//! assert!(report.metrics.exited > 0, "traffic flowed");
//! assert_eq!(report.metrics.accidents, 0, "no attack, no accidents");
//! ```

#![forbid(unsafe_code)]

pub mod adversary;
pub mod city;
pub mod config;
pub mod engine;
pub mod history;
pub mod imu;
pub mod invariant;
pub mod metrics;
pub mod report;
pub mod scenario;
pub mod vehicle;
pub mod world;

pub use adversary::{
    AdaptivePlan, AdaptiveState, AttackPolicy, CliquePlan, SybilPlan, SYBIL_ID_BASE,
};
pub use city::{CityConfig, CityGrid, CityReport, LinkSpec, ShardStats};
pub use config::{
    AttackPlan, CrashPlan, EngineChoice, ImOutage, SchedulerChoice, SignatureChoice, SimConfig,
    StoreConfig,
};
pub use history::{
    Incident, IncidentKind, ReplayError, ReplayReport, WorldHistory, DEFAULT_CAPACITY,
    DEFAULT_SNAPSHOT_EVERY,
};
pub use invariant::{InvariantChecker, InvariantKind, InvariantReport, InvariantViolation};
pub use metrics::SimMetrics;
pub use report::SimReport;
pub use scenario::{run_rounds, RoundsSummary};
pub use world::{Handoff, Simulation, WindowBenchPoint};
