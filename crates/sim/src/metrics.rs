//! Measurements collected during a simulation run.

use crate::invariant::InvariantReport;
use nwade_vanet::NetworkStats;

/// Raw counters and event timestamps from one run.
#[derive(Debug, Clone, Default)]
pub struct SimMetrics {
    /// Vehicles spawned.
    pub spawned: usize,
    /// Vehicles that exited the modeled area.
    pub exited: usize,
    /// Exited vehicles that were benign.
    pub exited_benign: usize,
    /// Time the attack was injected.
    pub attack_start: Option<f64>,
    /// First benign incident report naming the true violator.
    pub violation_first_report: Option<f64>,
    /// Manager confirmation (evacuation alert) naming the true violator.
    pub violation_confirmed: Option<f64>,
    /// First benign *global* report naming the true violator (the
    /// malicious-IM detection path).
    pub violation_global_report: Option<f64>,
    /// Evacuation alert issued against the innocent accused vehicle
    /// (Type A false alarm *triggered*).
    pub false_accusation_confirmed: Option<f64>,
    /// Dismissal of the false accusation (Type A false alarm *detected*).
    pub false_accusation_dismissed: Option<f64>,
    /// First benign dissent (wrongful-accusation global report) against a
    /// false evacuation alert.
    pub wrongful_dissent: Option<f64>,
    /// Benign rebuttals of false "conflicting plans" claims (Type B
    /// detected), with the time of the first.
    pub type_b_rebuttals: usize,
    /// First Type B rebuttal time.
    pub type_b_first_rebuttal: Option<f64>,
    /// Time the first Type B false claim was broadcast.
    pub type_b_first_broadcast: Option<f64>,
    /// Benign vehicles that self-evacuated because of a false
    /// conflicting-plans claim (Type B triggered).
    pub type_b_evacuations: usize,
    /// Total benign self-evacuations (any cause).
    pub benign_self_evacuations: usize,
    /// Benign self-evacuations whose claim names the innocent accused
    /// vehicle — the Type A false alarm actually disrupting traffic.
    pub accused_claim_evacuations: usize,
    /// Benign vehicles that rejected an honest block (residual
    /// view-inconsistency; should be rare).
    pub honest_block_rejections: usize,
    /// First benign self-evacuation after a malicious-IM block corruption
    /// (the IM-attack detection signal).
    pub corrupted_block_detected: Option<f64>,
    /// Benign self-evacuations caused by the manager going silent past
    /// the report timeout (recoverable; distinct from protocol distrust).
    pub im_timeout_evacuations: usize,
    /// Timeout-evacuated vehicles re-admitted after the manager restarted
    /// and broadcast a fresh, verifiably chained block.
    pub readmitted_after_outage: usize,
    /// Messages addressed to the manager that fell into its outage
    /// window.
    pub imu_outage_drops: usize,
    /// Intersection-manager crash injections fired (chaos harness).
    pub im_crashes: usize,
    /// Manager restarts recovered warm from the durable store:
    /// reservations and chain tip intact, nobody evacuated.
    pub warm_recoveries: usize,
    /// Manager restarts that fell back to the cold path: conversational
    /// state lost, darkness until the manager rebuilt from the chain.
    pub cold_recoveries: usize,
    /// Torn-tail bytes the durable store truncated during recoveries.
    pub wal_truncated_bytes: u64,
    /// Time the chaos crash injection fired.
    pub im_crash_time: Option<f64>,
    /// Simulated seconds from the crash injection to the manager's next
    /// block broadcast: 0 for a same-tick warm recovery, roughly the
    /// cold downtime plus a processing window on the cold path.
    pub im_recovery_latency: Option<f64>,
    /// Probe epochs the adaptive adversary completed (each one bisects
    /// its amplitude bracket).
    pub adaptive_epochs: usize,
    /// The adaptive adversary's latest probe amplitude, meters — after
    /// enough epochs this sits just under the watchers' effective
    /// tolerance.
    pub adaptive_amplitude: Option<f64>,
    /// Incident reports naming the adaptive adversary.
    pub adaptive_reports: usize,
    /// Vehicles recruited into the colluding watcher clique.
    pub clique_size: usize,
    /// Fabricated incident reports sent by Sybil phantom identities.
    pub sybil_reports: usize,
    /// Evacuation alerts the manager wrongly issued against the Sybil
    /// flood's innocent target (each one is a ledger failure).
    pub sybil_false_alerts: usize,
    /// Deliveries whose payload arrived corrupted and was dropped at the
    /// framing layer (anything but a block, whose corruption must reach
    /// Algorithm 1's verifier).
    pub corrupted_drops: usize,
    /// Ground-truth collisions between distinct vehicle pairs.
    pub accidents: usize,
    /// Blocks broadcast by the manager.
    pub blocks_broadcast: usize,
    /// Plans scheduled in total.
    pub plans_scheduled: usize,
    /// Plan requests waiting when a processing window opened, summed
    /// over windows (each deferral re-offers, so one vehicle can count
    /// several times under a binding admission cap).
    pub admission_offered: usize,
    /// Requests admitted into a scheduling window, summed over windows.
    pub admission_admitted: usize,
    /// Requests the admission cap pushed back to a later window, summed
    /// over windows.
    pub admission_deferred: usize,
    /// Requests dropped outright by a bench enqueue cap (never queued).
    pub requests_shed: usize,
    /// Windows in which the admission cap deferred at least one request.
    pub shed_windows: usize,
    /// `offered - admitted` gap of the most recent processing window.
    pub last_window_shed_gap: usize,
    /// Plan count of every broadcast block (drives the Fig. 6 harness).
    pub block_sizes: Vec<usize>,
    /// Vehicles handed off to a neighbouring intersection across a city
    /// boundary (counted by the departing shard; not an exit).
    pub handoffs_out: usize,
    /// Vehicles received from a neighbouring intersection and re-admitted
    /// through the normal request path (counted by the receiving shard;
    /// not a spawn).
    pub handoffs_in: usize,
    /// Sum of boundary re-admission latencies, simulated seconds from a
    /// handoff entering this shard's inbound queue to the vehicle's first
    /// assigned plan here.
    pub boundary_latency_total: f64,
    /// Handed-off vehicles whose re-admission latency has been measured
    /// (divisor for [`SimMetrics::boundary_readmission_latency`]).
    pub boundary_latency_samples: usize,
    /// Network statistics snapshot.
    pub network: NetworkStats,
    /// Safety-invariant violations observed during the run.
    pub invariants: InvariantReport,
    /// Simulated duration, seconds.
    pub duration: f64,
}

impl SimMetrics {
    /// Throughput in vehicles per minute over the whole run.
    pub fn throughput_per_minute(&self) -> f64 {
        if self.duration <= 0.0 {
            return 0.0;
        }
        self.exited as f64 * 60.0 / self.duration
    }

    /// Mean boundary re-admission latency in simulated seconds, `None`
    /// until a handed-off vehicle has received its first plan here.
    pub fn boundary_readmission_latency(&self) -> Option<f64> {
        (self.boundary_latency_samples > 0)
            .then(|| self.boundary_latency_total / self.boundary_latency_samples as f64)
    }

    /// Whether the staged plan violation was detected, per the paper's
    /// criterion: a benign-IM run needs the manager's confirmation; a
    /// malicious-IM run needs a benign vehicle's global escalation.
    pub fn violation_detected(&self, im_malicious: bool) -> bool {
        if im_malicious {
            self.violation_global_report.is_some()
        } else {
            // An honest manager normally confirms; if a colluder-heavy
            // watch group tricked it into dismissing, benign vehicles'
            // global escalation still counts as detection (§VI-B).
            self.violation_confirmed.is_some() || self.violation_global_report.is_some()
        }
    }

    /// Detection latency of the violation, seconds, when detected.
    pub fn violation_detection_latency(&self, im_malicious: bool) -> Option<f64> {
        let detected = if im_malicious {
            self.violation_global_report?
        } else {
            match (self.violation_confirmed, self.violation_global_report) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => return None,
            }
        };
        Some(detected - self.attack_start?)
    }

    /// Time from the first incident report about the violator to the
    /// manager's confirmation — the paper's Fig. 5 "detection time" (the
    /// report-processing latency, not the physical time the deviation
    /// needs to exceed the sensor tolerance).
    pub fn report_processing_latency(&self) -> Option<f64> {
        Some(self.violation_confirmed? - self.violation_first_report?)
    }

    /// Time from the first Type B false broadcast to the first benign
    /// rebuttal — Fig. 5's "wrong travel plans" detection time.
    pub fn type_b_rebuttal_latency(&self) -> Option<f64> {
        Some(self.type_b_first_rebuttal? - self.type_b_first_broadcast?)
    }

    /// Marks the earlier of the existing and the new timestamp.
    pub(crate) fn note_first(slot: &mut Option<f64>, t: f64) {
        if slot.is_none_or(|prev| t < prev) {
            *slot = Some(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_calculation() {
        let mut m = SimMetrics::default();
        m.exited = 100;
        m.duration = 300.0;
        assert!((m.throughput_per_minute() - 20.0).abs() < 1e-9);
        m.duration = 0.0;
        assert_eq!(m.throughput_per_minute(), 0.0);
    }

    #[test]
    fn detection_criteria_by_im_role() {
        let mut m = SimMetrics::default();
        m.attack_start = Some(100.0);
        m.violation_confirmed = Some(100.4);
        assert!(m.violation_detected(false));
        assert!(!m.violation_detected(true));
        m.violation_global_report = Some(101.5);
        assert!(m.violation_detected(true));
        assert!((m.violation_detection_latency(false).expect("latency") - 0.4).abs() < 1e-9);
        assert!((m.violation_detection_latency(true).expect("latency") - 1.5).abs() < 1e-9);
    }

    #[test]
    fn boundary_latency_averages() {
        let mut m = SimMetrics::default();
        assert_eq!(m.boundary_readmission_latency(), None);
        m.boundary_latency_total = 6.0;
        m.boundary_latency_samples = 4;
        assert!((m.boundary_readmission_latency().expect("mean") - 1.5).abs() < 1e-9);
    }

    #[test]
    fn note_first_keeps_minimum() {
        let mut slot = None;
        SimMetrics::note_first(&mut slot, 5.0);
        SimMetrics::note_first(&mut slot, 3.0);
        SimMetrics::note_first(&mut slot, 9.0);
        assert_eq!(slot, Some(3.0));
    }
}
