//! The result of one simulation run.

use crate::metrics::SimMetrics;
use nwade::attack::AttackSetting;
use nwade_intersection::IntersectionKind;

/// Everything a run produced, plus the headline configuration it ran
/// under.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The attack setting, if any.
    pub setting: Option<AttackSetting>,
    /// Intersection kind.
    pub kind: IntersectionKind,
    /// Arrival rate, vehicles/minute.
    pub density: f64,
    /// Whether the NWADE layer was active.
    pub nwade_enabled: bool,
    /// The collected measurements.
    pub metrics: SimMetrics,
}

impl SimReport {
    /// Whether the run's staged violation was detected.
    pub fn violation_detected(&self) -> bool {
        let im = self.setting.is_some_and(|s| s.im_malicious());
        self.metrics.violation_detected(im)
    }

    /// Detection latency in seconds, when applicable.
    pub fn detection_latency(&self) -> Option<f64> {
        let im = self.setting.is_some_and(|s| s.im_malicious());
        self.metrics.violation_detection_latency(im)
    }

    /// Whether the Type A false accusation triggered an unnecessary
    /// response: an honest manager evacuating against the innocent, or
    /// benign vehicles self-evacuating over the staged claim.
    pub fn false_alarm_a_triggered(&self) -> bool {
        self.metrics.false_accusation_confirmed.is_some()
            || self.metrics.accused_claim_evacuations > 0
    }

    /// Whether the Type A false accusation was identified as false
    /// (dismissed by an honest manager, or dissented against under a
    /// malicious one).
    pub fn false_alarm_a_detected(&self) -> bool {
        self.metrics.false_accusation_dismissed.is_some() || self.metrics.wrongful_dissent.is_some()
    }

    /// Whether the Type B false claim triggered any benign
    /// self-evacuation.
    pub fn false_alarm_b_triggered(&self) -> bool {
        self.metrics.type_b_evacuations > 0
    }

    /// Whether the Type B false claim was rebutted by at least one benign
    /// vehicle.
    pub fn false_alarm_b_detected(&self) -> bool {
        self.metrics.type_b_rebuttals > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimReport {
        SimReport {
            setting: Some(AttackSetting::V2),
            kind: IntersectionKind::FourWayCross,
            density: 80.0,
            nwade_enabled: true,
            metrics: SimMetrics::default(),
        }
    }

    #[test]
    fn false_alarm_classification() {
        let mut r = base();
        assert!(!r.false_alarm_a_triggered());
        assert!(!r.false_alarm_a_detected());
        r.metrics.false_accusation_dismissed = Some(10.0);
        assert!(r.false_alarm_a_detected());
        r.metrics.false_accusation_confirmed = Some(11.0);
        assert!(r.false_alarm_a_triggered());
        r.metrics.type_b_rebuttals = 2;
        assert!(r.false_alarm_b_detected());
        assert!(!r.false_alarm_b_triggered());
    }

    #[test]
    fn detection_uses_setting_role() {
        let mut r = base();
        r.metrics.attack_start = Some(100.0);
        r.metrics.violation_confirmed = Some(100.3);
        assert!(r.violation_detected());
        assert!((r.detection_latency().expect("latency") - 0.3).abs() < 1e-9);
        // Malicious-IM setting requires the global path.
        r.setting = Some(AttackSetting::ImV2);
        assert!(!r.violation_detected());
        r.metrics.violation_global_report = Some(101.0);
        assert!(r.violation_detected());
    }
}
