//! Multi-round scenario execution: the paper evaluates each attack
//! setting over 10 rounds with random attacker placement (§VI-A).

use crate::config::SimConfig;
use crate::report::SimReport;
use crate::world::Simulation;

/// Aggregated results over several rounds of one configuration.
#[derive(Debug, Clone)]
pub struct RoundsSummary {
    /// Individual round reports.
    pub rounds: Vec<SimReport>,
}

impl RoundsSummary {
    /// Fraction of rounds in which the staged violation was detected.
    pub fn detection_rate(&self) -> f64 {
        rate(&self.rounds, SimReport::violation_detected)
    }

    /// Fraction of rounds in which the Type A false alarm triggered.
    pub fn false_alarm_a_trigger_rate(&self) -> f64 {
        rate(&self.rounds, SimReport::false_alarm_a_triggered)
    }

    /// Fraction of rounds in which the Type A false alarm was detected.
    pub fn false_alarm_a_detection_rate(&self) -> f64 {
        rate(&self.rounds, SimReport::false_alarm_a_detected)
    }

    /// Fraction of rounds in which the Type B false alarm triggered.
    pub fn false_alarm_b_trigger_rate(&self) -> f64 {
        rate(&self.rounds, SimReport::false_alarm_b_triggered)
    }

    /// Fraction of rounds in which the Type B false alarm was detected.
    pub fn false_alarm_b_detection_rate(&self) -> f64 {
        rate(&self.rounds, SimReport::false_alarm_b_detected)
    }

    /// Mean detection latency over rounds that detected, seconds.
    pub fn mean_detection_latency(&self) -> Option<f64> {
        let latencies: Vec<f64> = self
            .rounds
            .iter()
            .filter_map(SimReport::detection_latency)
            .collect();
        if latencies.is_empty() {
            None
        } else {
            Some(latencies.iter().sum::<f64>() / latencies.len() as f64)
        }
    }

    /// Mean throughput over rounds, vehicles/minute.
    pub fn mean_throughput(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds
            .iter()
            .map(|r| r.metrics.throughput_per_minute())
            .sum::<f64>()
            / self.rounds.len() as f64
    }
}

fn rate(rounds: &[SimReport], f: impl Fn(&SimReport) -> bool) -> f64 {
    if rounds.is_empty() {
        return 0.0;
    }
    rounds.iter().filter(|r| f(r)).count() as f64 / rounds.len() as f64
}

/// Runs `rounds` simulations differing only in seed (which randomizes
/// arrivals and attacker placement), as the paper does. Rounds are
/// independent and run on parallel threads; results are returned in
/// seed order, so the summary is deterministic.
pub fn run_rounds(base: &SimConfig, rounds: u64) -> RoundsSummary {
    let configs: Vec<SimConfig> = (0..rounds)
        .map(|i| {
            let mut config = base.clone();
            config.seed = base.seed.wrapping_mul(1_000_003).wrapping_add(i);
            config
        })
        .collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(configs.len().max(1));
    // A simple work queue shared by the worker threads; declared before
    // the scope so it outlives every spawned borrow.
    let queue = std::sync::Mutex::new(configs.into_iter().enumerate());
    let queue = &queue;
    let reports: Vec<SimReport> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                loop {
                    let next = queue.lock().expect("queue lock").next();
                    let Some((i, config)) = next else { break };
                    out.push((i, Simulation::new(config).run()));
                }
                out
            }));
        }
        let mut indexed: Vec<(usize, SimReport)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("round thread panicked"))
            .collect();
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    });
    RoundsSummary { rounds: reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SimMetrics;
    use nwade::attack::AttackSetting;
    use nwade_intersection::IntersectionKind;

    fn report(detected: bool) -> SimReport {
        let mut metrics = SimMetrics::default();
        metrics.attack_start = Some(100.0);
        if detected {
            metrics.violation_confirmed = Some(100.5);
        }
        metrics.exited = 60;
        metrics.duration = 120.0;
        SimReport {
            setting: Some(AttackSetting::V1),
            kind: IntersectionKind::FourWayCross,
            density: 80.0,
            nwade_enabled: true,
            metrics,
        }
    }

    #[test]
    fn rates_aggregate() {
        let s = RoundsSummary {
            rounds: vec![report(true), report(true), report(false), report(true)],
        };
        assert!((s.detection_rate() - 0.75).abs() < 1e-9);
        assert!((s.mean_detection_latency().expect("some detected") - 0.5).abs() < 1e-9);
        assert!((s.mean_throughput() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_rates_are_zero() {
        let s = RoundsSummary { rounds: vec![] };
        assert_eq!(s.detection_rate(), 0.0);
        assert_eq!(s.mean_throughput(), 0.0);
        assert!(s.mean_detection_latency().is_none());
    }
}
