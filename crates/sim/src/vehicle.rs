//! Vehicle agents: physics plus the NWADE guard.

use nwade::attack::ViolationKind;
use nwade::{Retrier, RetryPolicy, VehicleGuard};
use nwade_aim::TravelPlan;
use nwade_geometry::Vec2;
use nwade_intersection::{MovementId, Topology};
use nwade_traffic::{KinematicLimits, VehicleDescriptor, VehicleId};

/// The security role assigned to a vehicle by the attack plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Honest vehicle running the full NWADE protocol.
    Benign,
    /// Compromised vehicle staging the plan violation.
    Violator(ViolationKind),
    /// Compromised vehicle sending false reports (and voting falsely).
    FalseReporter,
}

/// How the vehicle currently decides its motion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriveMode {
    /// No plan yet: hold the spawn speed.
    Cruise,
    /// Execute the travel-plan profile.
    FollowPlan,
    /// Malicious deviation, started at the given time.
    Violate(f64),
    /// Manager distrusted: reduced-speed autonomous exit.
    SelfEvacuate,
}

/// Maximum lateral offset of the lane-deviation attack, meters.
pub(crate) const MAX_LATERAL: f64 = 8.0;
/// Lateral drift rate of the lane-deviation attack, m/s.
const LATERAL_RATE: f64 = 1.5;
/// Speed factor a self-evacuating vehicle targets — deliberately slow:
/// uncoordinated traffic crossing a box must leave reaction margin
/// (§IV-B5's "drive slower to maintain sufficient reaction").
const EVAC_SPEED_FACTOR: f64 = 0.4;
/// Overspeed factor of the speed-up attack.
const OVERSPEED: f64 = 1.4;

/// One vehicle in the world: kinematic state + protocol engine.
#[derive(Clone)]
pub struct VehicleAgent {
    /// Vehicle id.
    pub id: VehicleId,
    /// Assigned movement.
    pub movement: MovementId,
    /// Static characteristics.
    pub descriptor: VehicleDescriptor,
    /// The NWADE protocol engine.
    pub guard: VehicleGuard,
    /// Security role.
    pub role: Role,
    /// Current motion mode.
    pub mode: DriveMode,
    /// Arclength along the movement path.
    pub s: f64,
    /// Current speed, m/s.
    pub speed: f64,
    /// Lateral offset from the path center line (lane deviation attack).
    pub lateral: f64,
    /// Spawn time.
    pub spawned_at: f64,
    /// The plan currently executed.
    pub plan: Option<TravelPlan>,
    /// Time the vehicle exited, once it has.
    pub exited_at: Option<f64>,
    /// Retry schedule for the plan request (replaces the old fixed 5 s
    /// re-request): exponential backoff with per-vehicle jitter so a
    /// fleet left planless by an outage does not resend in lockstep.
    pub plan_retry: Retrier,
    /// Set when local collision avoidance overrode this tick's motion.
    pub braked_this_tick: bool,
}

impl VehicleAgent {
    /// Creates an agent at the start of its movement path.
    pub fn new(
        id: VehicleId,
        movement: MovementId,
        descriptor: VehicleDescriptor,
        guard: VehicleGuard,
        speed: f64,
        now: f64,
    ) -> Self {
        VehicleAgent {
            id,
            movement,
            descriptor,
            guard,
            role: Role::Benign,
            mode: DriveMode::Cruise,
            s: 0.0,
            speed,
            lateral: 0.0,
            spawned_at: now,
            plan: None,
            exited_at: None,
            // The world sends the first request at spawn time itself.
            plan_retry: Retrier::after_initial_send(
                RetryPolicy::plan_request(),
                now,
                id.raw() ^ 0x9A4E_5D01,
            ),
            braked_this_tick: false,
        }
    }

    /// World position (path point plus lateral offset).
    pub fn position(&self, topology: &Topology) -> Vec2 {
        let path = topology.movement(self.movement).path();
        let base = path.point_at(self.s);
        if self.lateral.abs() < 1e-9 {
            base
        } else {
            base + path.heading_at(self.s).perp() * self.lateral
        }
    }

    /// `true` once the vehicle left the modeled area.
    pub fn is_active(&self) -> bool {
        self.exited_at.is_none()
    }

    /// `true` when this vehicle participates in the attack.
    pub fn is_malicious(&self) -> bool {
        self.role != Role::Benign
    }

    /// Switches to plan following.
    pub fn follow_plan(&mut self, plan: TravelPlan) {
        // Malicious vehicles mid-violation ignore new plans.
        if matches!(self.mode, DriveMode::Violate(_) | DriveMode::SelfEvacuate) {
            self.plan = Some(plan);
            return;
        }
        self.plan = Some(plan);
        self.mode = DriveMode::FollowPlan;
    }

    /// Starts the violation behaviour at `now`.
    pub fn start_violation(&mut self, kind: ViolationKind, now: f64) {
        self.role = Role::Violator(kind);
        self.mode = DriveMode::Violate(now);
    }

    /// Switches to autonomous self-evacuation.
    pub fn self_evacuate(&mut self) {
        self.mode = DriveMode::SelfEvacuate;
    }

    /// Re-enters normal operation after the guard re-admitted the vehicle
    /// (manager back from an outage). The pre-outage plan is stale — the
    /// vehicle cruises and re-requests a fresh one immediately.
    pub fn readmit(&mut self, now: f64) {
        self.mode = DriveMode::Cruise;
        self.plan = None;
        self.plan_retry.reset(now);
    }

    /// Local collision avoidance: hard-brake this tick regardless of the
    /// plan (the plan resumes once the obstacle clears).
    pub fn emergency_brake(&mut self, limits: &KinematicLimits, dt: f64) {
        self.speed = (self.speed - limits.d_max * dt).max(0.0);
        self.s += self.speed * dt;
        self.braked_this_tick = true;
    }

    /// Advances physics by `dt`. Returns `true` if the vehicle crossed
    /// the end of its path this tick.
    pub fn step(
        &mut self,
        topology: &Topology,
        limits: &KinematicLimits,
        dt: f64,
        now: f64,
    ) -> bool {
        let path_len = topology.movement(self.movement).path().length();
        match self.mode {
            DriveMode::Cruise => {
                self.s += self.speed * dt;
            }
            DriveMode::FollowPlan => {
                if let Some(plan) = &self.plan {
                    let (s, v) = plan.profile().state_at(now);
                    self.s = s;
                    self.speed = v;
                } else {
                    self.s += self.speed * dt;
                }
            }
            DriveMode::Violate(since) => match self.role {
                Role::Violator(ViolationKind::SuddenStop) => {
                    self.speed = (self.speed - limits.d_max * dt).max(0.0);
                    self.s += self.speed * dt;
                }
                Role::Violator(ViolationKind::SpeedUp) => {
                    self.speed = (self.speed + limits.a_max * dt).min(limits.v_max * OVERSPEED);
                    self.s += self.speed * dt;
                }
                Role::Violator(ViolationKind::LaneDeviation) => {
                    // Keep the planned longitudinal motion, drift sideways.
                    if let Some(plan) = &self.plan {
                        let (s, v) = plan.profile().state_at(now);
                        self.s = s;
                        self.speed = v;
                    } else {
                        self.s += self.speed * dt;
                    }
                    let elapsed = now - since;
                    self.lateral = (elapsed * LATERAL_RATE).min(MAX_LATERAL);
                }
                _ => {
                    // A non-violator in Violate mode should not happen;
                    // degrade to cruising.
                    self.s += self.speed * dt;
                }
            },
            DriveMode::SelfEvacuate => {
                // §IV-B4: "either pull over to the roadside or find the
                // safest route to exit". Vehicles still approaching the
                // box pull over; vehicles already inside or past it are
                // safer out than stopped, so they proceed slowly.
                let box_entry = topology.movement(self.movement).box_entry();
                let target = if self.s < box_entry - 10.0 {
                    0.0
                } else {
                    limits.v_max * EVAC_SPEED_FACTOR
                };
                if self.speed > target {
                    self.speed = (self.speed - limits.d_max * dt).max(target);
                } else {
                    self.speed = (self.speed + limits.a_max * dt).min(target);
                }
                self.s += self.speed * dt;
            }
        }
        if self.s >= path_len && self.exited_at.is_none() {
            self.exited_at = Some(now);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwade::NwadeConfig;
    use nwade_crypto::MockScheme;
    use nwade_geometry::MotionProfile;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind};
    use nwade_traffic::VehicleDescriptor;
    use std::sync::Arc;

    fn world() -> (Arc<Topology>, VehicleAgent) {
        let topo = Arc::new(build(
            IntersectionKind::FourWayCross,
            &GeometryConfig::default(),
        ));
        let guard = VehicleGuard::new(
            VehicleId::new(0),
            topo.clone(),
            Arc::new(MockScheme::from_seed(0)),
            NwadeConfig::default(),
        );
        let agent = VehicleAgent::new(
            VehicleId::new(0),
            MovementId::new(0),
            VehicleDescriptor {
                brand: "A".into(),
                model: "B".into(),
                color: "red".into(),
            },
            guard,
            15.0,
            0.0,
        );
        (topo, agent)
    }

    fn plan_for(topo: &Topology, agent: &VehicleAgent, start: f64) -> TravelPlan {
        let path = topo.movement(agent.movement).path();
        TravelPlan::new(
            agent.id,
            agent.descriptor.clone(),
            nwade_aim::VehicleStatus {
                position: path.point_at(0.0),
                speed: 15.0,
                heading: path.heading_at(0.0),
            },
            agent.movement,
            MotionProfile::cruise(start, 15.0, path.length()),
        )
    }

    #[test]
    fn cruise_mode_holds_speed() {
        let (topo, mut a) = world();
        let limits = KinematicLimits::default();
        for i in 0..10 {
            a.step(&topo, &limits, 0.1, i as f64 * 0.1);
        }
        assert!((a.s - 15.0).abs() < 1e-9);
        assert_eq!(a.speed, 15.0);
    }

    #[test]
    fn follow_plan_tracks_profile() {
        let (topo, mut a) = world();
        let limits = KinematicLimits::default();
        a.follow_plan(plan_for(&topo, &a, 0.0));
        a.step(&topo, &limits, 0.1, 10.0);
        assert!((a.s - 150.0).abs() < 1e-9);
        assert_eq!(a.mode, DriveMode::FollowPlan);
    }

    #[test]
    fn sudden_stop_halts_vehicle() {
        let (topo, mut a) = world();
        let limits = KinematicLimits::default();
        a.follow_plan(plan_for(&topo, &a, 0.0));
        a.start_violation(ViolationKind::SuddenStop, 5.0);
        let mut t = 5.0;
        for _ in 0..100 {
            t += 0.1;
            a.step(&topo, &limits, 0.1, t);
        }
        assert_eq!(a.speed, 0.0);
        assert!(a.is_malicious());
    }

    #[test]
    fn speed_up_exceeds_limit() {
        let (topo, mut a) = world();
        let limits = KinematicLimits::default();
        a.follow_plan(plan_for(&topo, &a, 0.0));
        a.start_violation(ViolationKind::SpeedUp, 0.0);
        let mut t = 0.0;
        for _ in 0..200 {
            t += 0.1;
            a.step(&topo, &limits, 0.1, t);
        }
        assert!(a.speed > limits.v_max, "overspeeding: {}", a.speed);
    }

    #[test]
    fn lane_deviation_drifts_laterally() {
        let (topo, mut a) = world();
        let limits = KinematicLimits::default();
        a.follow_plan(plan_for(&topo, &a, 0.0));
        a.start_violation(ViolationKind::LaneDeviation, 0.0);
        let mut t = 0.0;
        for _ in 0..100 {
            t += 0.1;
            a.step(&topo, &limits, 0.1, t);
        }
        assert!((a.lateral - 8.0).abs() < 0.2, "drifted {}", a.lateral);
        // Position is offset from the path center line.
        let path_pos = topo.movement(a.movement).path().point_at(a.s);
        assert!(a.position(&topo).distance(path_pos) > 7.0);
    }

    #[test]
    fn self_evacuation_pulls_over_in_approach() {
        let (topo, mut a) = world();
        let limits = KinematicLimits::default();
        a.speed = 20.0;
        a.self_evacuate();
        let mut t = 0.0;
        for _ in 0..150 {
            t += 0.1;
            a.step(&topo, &limits, 0.1, t);
        }
        assert_eq!(a.speed, 0.0, "approaching evacuee pulls over");
    }

    #[test]
    fn self_evacuation_proceeds_out_when_inside_the_box() {
        let (topo, mut a) = world();
        let limits = KinematicLimits::default();
        a.s = topo.movement(a.movement).box_entry() + 1.0;
        a.speed = 20.0;
        a.self_evacuate();
        let mut t = 0.0;
        for _ in 0..100 {
            t += 0.1;
            a.step(&topo, &limits, 0.1, t);
        }
        let target = limits.v_max * EVAC_SPEED_FACTOR;
        assert!((a.speed - target).abs() < 0.3, "speed {}", a.speed);
        assert!(a.s > topo.movement(a.movement).box_entry() + 50.0);
    }

    #[test]
    fn exit_detection() {
        let (topo, mut a) = world();
        let limits = KinematicLimits::default();
        let len = topo.movement(a.movement).path().length();
        a.s = len - 1.0;
        let crossed = a.step(&topo, &limits, 0.1, 50.0);
        assert!(crossed);
        assert!(!a.is_active());
        assert_eq!(a.exited_at, Some(50.0));
        // Subsequent steps do not re-trigger.
        assert!(!a.step(&topo, &limits, 0.1, 50.1));
    }

    #[test]
    fn new_plans_do_not_interrupt_violation() {
        let (topo, mut a) = world();
        a.start_violation(ViolationKind::SuddenStop, 0.0);
        a.follow_plan(plan_for(&topo, &a, 0.0));
        assert!(matches!(a.mode, DriveMode::Violate(_)));
        assert!(a.plan.is_some());
    }
}
