//! The simulation world: fixed-timestep physics plus the event-driven
//! message plane.
//!
//! # Tick pipeline
//!
//! Every `dt` (default 100 ms) one tick runs, in order:
//!
//! 1. **Spawning** — due Poisson arrivals enter if their lane's entry is
//!    clear by a full stopping distance; each spawn sends a plan request
//!    to the manager.
//! 2. **Plan re-requests** — vehicles still cruising without a plan ask
//!    again every 5 s (covers manager deferrals and lost blocks).
//! 3. **Announcement re-broadcast** — self-evacuating vehicles repeat
//!    their global report every 2 s so newcomers learn they are off-plan.
//! 4. **Attack injection** — at the configured start, the Table I roles
//!    are assigned to live vehicles and false reports are scheduled.
//! 5. **Physics** — the collision-avoidance layer (car-following toward
//!    off-plan leaders, headway cone, anticipated-crossing yield) marks
//!    emergency braking; every vehicle then advances per its
//!    [`DriveMode`].
//! 6. **Divergence check** — a benign vehicle pushed > 3 m off its plan
//!    by braking self-evacuates and announces itself (§IV-B5).
//! 7. **Ground truth** — collisions are recorded from world positions,
//!    independent of any protocol state.
//! 8. **Message plane** — due VANET deliveries dispatch into the vehicle
//!    guards and the manager agent; their actions are executed (sends,
//!    plan adoption, self-evacuation, metrics).
//! 9. **Sensing pass** (every 500 ms) — each benign vehicle observes
//!    neighbours in range and runs Algorithm 2 through its guard.
//! 10. **Manager window** (every δ = 1 s) — queued plan requests are
//!     scheduled, filtered, packaged and broadcast (Eq. 1).
//! 11. **Threat-cleared check** — once a confirmed violator stops or
//!     exits, recovery replans every vehicle parked by the evacuation.

use crate::adversary::{AdaptiveState, AttackPolicy, SYBIL_ID_BASE};
use crate::config::{ImOutage, SchedulerChoice, SignatureChoice, SimConfig};
use crate::engine::{fan_out, fan_out_indices, fan_out_mut, observed_neighbors, resolve_threads};
use crate::imu::{ImuAction, ImuAgent};
use crate::invariant::{InvariantChecker, VehicleSnapshot};
use crate::metrics::SimMetrics;
use crate::report::SimReport;
use crate::vehicle::{DriveMode, Role, VehicleAgent, MAX_LATERAL};
use nwade::attack::{AttackSetting, ViolationKind};
use nwade::messages::{
    class, GlobalClaim, GlobalReport, IncidentReport, NwadeMessage, Observation,
};
#[cfg(feature = "store")]
use nwade::{CrashPoint, ImPersistence, RecoveryOutcome};
use nwade::{
    EvacuationCause, GuardAction, ManagerAction, NwadeConfig, NwadeManager, RetryDecision,
    VehicleGuard, WindowPipeline,
};
use nwade_aim::TravelPlan;
use nwade_aim::{
    AdmissionQueue, FcfsScheduler, PlanRequest, ReservationScheduler, Scheduler, SchedulerConfig,
    TrafficLightScheduler,
};
use nwade_chain::tamper;
use nwade_crypto::{CachingVerifier, Digest, MockScheme, RsaKeyPair, RsaScheme, SignatureScheme};
use nwade_geometry::{GridIndex, MotionProfile, Vec2};
use nwade_intersection::{build, LegId, MovementId, Topology};
#[cfg(feature = "store")]
use nwade_store::MemBackend;
use nwade_traffic::{DemandGenerator, SpawnEvent, VehicleDescriptor, VehicleId};
use nwade_vanet::{Medium, NodeId, Recipient};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;

/// Center-to-center distance below which two vehicles count as a
/// ground-truth collision.
const COLLISION_DISTANCE: f64 = 2.0;

/// Cell size of the braking-scan grid. Only a performance knob: queries
/// use the per-tick conservative interaction radius regardless of the
/// cell, so candidate sets (and results) are unaffected.
const BRAKE_GRID_CELL: f64 = 60.0;

/// FNV-1a accumulator behind [`Simulation::state_hash`]. Not
/// cryptographic — it only needs to make divergent world states
/// collide with negligible probability while staying cheap enough to
/// run every tick of a replay comparison.
pub(crate) struct StateHasher(u64);

impl StateHasher {
    pub(crate) fn new() -> Self {
        StateHasher(0xcbf29ce484222325)
    }

    pub(crate) fn u64(&mut self, value: u64) {
        for byte in value.to_be_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    pub(crate) fn f64(&mut self, value: f64) {
        self.u64(value.to_bits());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// A vehicle crossing a city boundary: everything the receiving shard
/// needs to re-admit it through the normal request/admission path. The
/// record deliberately carries no plan — the plan was scoped to the
/// departing intersection; the vehicle asks the next manager for a
/// fresh one, exactly like a spawn.
#[derive(Debug, Clone)]
pub struct Handoff {
    /// City-wide vehicle identity (disjoint per-shard id spaces keep it
    /// unique everywhere).
    pub id: VehicleId,
    /// Speed at the boundary, m/s.
    pub speed: f64,
    /// Static characteristics.
    pub descriptor: VehicleDescriptor,
    /// Behavioural role — a violator or false reporter stays one next
    /// door.
    pub role: Role,
    /// The departing manager's false-report tally for this vehicle:
    /// ledger standing follows the vehicle across the boundary, so a
    /// squelched reporter cannot launder its history by driving away.
    pub false_reports: u32,
    /// The boundary leg the vehicle left through.
    pub exit_leg: LegId,
}

/// Persistent per-tick buffers. The hot phases (positions, sensing
/// snapshot, invariant snapshots, grid rebuilds) reuse these instead of
/// re-allocating every tick — at high density the churn dominated the
/// allocator profile.
struct TickScratch {
    /// `(id, position)` of every active vehicle, ID order.
    positions: Vec<(u64, Vec2)>,
    /// `(id, position, speed)` sensing snapshot, ID order.
    sense: Vec<(u64, Vec2, f64)>,
    /// Invariant snapshots, ID order.
    snapshots: Vec<VehicleSnapshot>,
    /// Bare positions fed to grid rebuilds.
    points: Vec<Vec2>,
    /// Grid over active positions for the collision / overlap sweeps.
    pair_grid: GridIndex,
    /// Grid over active positions for the braking scan.
    brake_grid: GridIndex,
    /// Grid over the sensing snapshot (cell = sensing radius).
    sense_grid: GridIndex,
}

/// The simulation world.
pub struct Simulation {
    config: SimConfig,
    topo: Arc<Topology>,
    rng: StdRng,
    medium: Medium<NwadeMessage>,
    imu: ImuAgent,
    vehicles: BTreeMap<u64, VehicleAgent>,
    spawn_queue: VecDeque<SpawnEvent>,
    /// Plan requests received and waiting for a window, with arrival
    /// times and deferral bookkeeping; `config.admission` decides which
    /// ones each window actually takes.
    pending_requests: AdmissionQueue,
    /// Sealing worker for the pipelined window engine; lazily created on
    /// the first pipelined window, rebuilt whenever the manager's chain
    /// tip moves without it (restart, recovery, evacuation block).
    window_pipeline: Option<WindowPipeline>,
    /// The manager tip `(prev_hash, next_index)` the pipeline worker is
    /// known to agree with — set right after every drained window.
    pipeline_tip: Option<(Digest, u64)>,
    now: f64,
    metrics: SimMetrics,
    scheme: Arc<dyn SignatureScheme>,
    last_window: f64,
    last_sense: f64,
    // Attack bookkeeping.
    attack_deployed: bool,
    violator: Option<VehicleId>,
    accused: Option<VehicleId>,
    colluders: HashSet<VehicleId>,
    false_report_schedule: Vec<(f64, VehicleId)>,
    // Adversary (AttackPolicy) bookkeeping.
    adversary_deployed: bool,
    /// Bisection state of the adaptive threshold-probing attacker.
    adaptive: Option<AdaptiveState>,
    /// Next time the Sybil phantoms fire a report volley.
    sybil_next_fire: f64,
    /// The innocent vehicle the Sybil phantoms accuse.
    sybil_target: Option<VehicleId>,
    corrupted_index: Option<u64>,
    collided: HashSet<(u64, u64)>,
    threat_cleared: bool,
    /// Index of the most recently broadcast block.
    last_block_index: Option<u64>,
    /// The block index the colluders falsely accuse (Type B).
    bogus_claim_index: Option<u64>,
    /// Vehicles that publicly announced self-evacuation (the honest
    /// manager hears the broadcasts too).
    announced_evacuating: HashSet<VehicleId>,
    /// Last re-broadcast time per evacuating vehicle.
    last_announce: std::collections::HashMap<u64, f64>,
    /// Tick-time safety-invariant checking (chaos harness).
    invariants: InvariantChecker,
    /// Whether the manager was inside its outage window last tick (for
    /// restart edge detection).
    im_was_down: bool,
    /// Darkness imposed by a cold crash recovery (the manager is down
    /// while it rebuilds from the persisted chain).
    forced_outage: Option<ImOutage>,
    /// Whether the configured crash-point injection already fired.
    #[cfg(feature = "store")]
    crash_fired: bool,
    /// The durable device the manager logs to, shared with the chaos
    /// harness so crashes and corruption can be injected mid-run.
    #[cfg(feature = "store")]
    store_handle: MemBackend,
    /// Active persistence session; `None` when durability is disabled
    /// by config or the store failed.
    #[cfg(feature = "store")]
    persistence: Option<ImPersistence>,
    /// Worker threads for the per-vehicle phases (1 = serial engine).
    threads: usize,
    /// Ticks advanced since construction (the forensic clock: snapshot
    /// and rewind points are addressed by tick, not by float time).
    ticks: u64,
    /// Legs that border a neighbouring intersection in a city grid: a
    /// vehicle whose movement terminates on one of these legs is handed
    /// off instead of exiting. Empty (the default) outside a city.
    boundary_exits: HashSet<LegId>,
    /// Handoffs produced since the city layer last drained them.
    outbound_handoffs: Vec<Handoff>,
    /// Handoffs delivered by the city layer, each waiting with its entry
    /// leg and enqueue time for a clear lane.
    inbound_handoffs: VecDeque<(LegId, Handoff, f64)>,
    /// Enqueue time of each handed-off vehicle still waiting for its
    /// first plan here (boundary re-admission latency bookkeeping).
    handoff_wait: BTreeMap<u64, f64>,
    /// Reusable per-tick buffers and spatial indices.
    scratch: TickScratch,
}

impl Clone for Simulation {
    /// Deep copy of the whole world — the forensic snapshot primitive.
    ///
    /// Everything that influences future behaviour is duplicated:
    /// vehicles (guards included), the manager stack, in-flight
    /// messages, the RNG stream, attack bookkeeping, and (with the
    /// `store` feature) the durable device itself, forked with its
    /// volatile/durable boundary intact so crash injections tear
    /// identically in the copy. The per-tick scratch buffers are
    /// rebuilt empty — every phase overwrites them before reading, so
    /// they carry no cross-tick state.
    fn clone(&self) -> Self {
        #[cfg(feature = "store")]
        let store_handle = self.store_handle.fork();
        #[cfg(feature = "store")]
        let persistence = self
            .persistence
            .as_ref()
            .map(|p| p.fork_onto(Box::new(store_handle.clone())));
        Simulation {
            config: self.config.clone(),
            topo: self.topo.clone(),
            rng: self.rng.clone(),
            medium: self.medium.clone(),
            imu: self.imu.clone(),
            vehicles: self.vehicles.clone(),
            spawn_queue: self.spawn_queue.clone(),
            pending_requests: self.pending_requests.clone(),
            // The sealing worker is not cloned — it is drained within
            // every window, so it never carries cross-tick state; the
            // copy lazily respawns its own at the next pipelined window.
            window_pipeline: None,
            pipeline_tip: None,
            now: self.now,
            metrics: self.metrics.clone(),
            scheme: self.scheme.clone(),
            last_window: self.last_window,
            last_sense: self.last_sense,
            attack_deployed: self.attack_deployed,
            violator: self.violator,
            accused: self.accused,
            colluders: self.colluders.clone(),
            false_report_schedule: self.false_report_schedule.clone(),
            adversary_deployed: self.adversary_deployed,
            adaptive: self.adaptive,
            sybil_next_fire: self.sybil_next_fire,
            sybil_target: self.sybil_target,
            corrupted_index: self.corrupted_index,
            collided: self.collided.clone(),
            threat_cleared: self.threat_cleared,
            last_block_index: self.last_block_index,
            bogus_claim_index: self.bogus_claim_index,
            announced_evacuating: self.announced_evacuating.clone(),
            last_announce: self.last_announce.clone(),
            invariants: self.invariants.clone(),
            im_was_down: self.im_was_down,
            forced_outage: self.forced_outage,
            #[cfg(feature = "store")]
            crash_fired: self.crash_fired,
            #[cfg(feature = "store")]
            store_handle,
            #[cfg(feature = "store")]
            persistence,
            threads: self.threads,
            ticks: self.ticks,
            boundary_exits: self.boundary_exits.clone(),
            outbound_handoffs: self.outbound_handoffs.clone(),
            inbound_handoffs: self.inbound_handoffs.clone(),
            handoff_wait: self.handoff_wait.clone(),
            scratch: TickScratch {
                positions: Vec::new(),
                sense: Vec::new(),
                snapshots: Vec::new(),
                points: Vec::new(),
                pair_grid: GridIndex::with_cell(2.0 * COLLISION_DISTANCE),
                brake_grid: GridIndex::with_cell(BRAKE_GRID_CELL),
                sense_grid: GridIndex::with_cell(self.config.nwade.sensing_radius),
            },
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("tick", &self.ticks)
            .field("now", &self.now)
            .field("vehicles", &self.vehicles.len())
            .field("state_hash", &self.state_hash())
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Builds a simulation from a configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    pub fn new(config: SimConfig) -> Self {
        config.validate().expect("sim config must be valid");
        let topo = Arc::new(build(config.kind, &config.geometry));
        let mut rng = StdRng::seed_from_u64(config.seed);
        // The scheme is shared by the manager (signing) and every guard
        // (verifying). The caching wrapper memoises verification verdicts
        // by (digest, signature), so a block broadcast to N vehicles costs
        // one public-key operation instead of N — signing is a pure
        // pass-through.
        let scheme: Arc<dyn SignatureScheme> = match config.signature {
            SignatureChoice::Mock => Arc::new(CachingVerifier::new(MockScheme::from_seed(
                config.seed ^ 0xA5A5,
            ))),
            SignatureChoice::Rsa { bits } => Arc::new(CachingVerifier::new(RsaScheme::new(
                RsaKeyPair::generate(bits, &mut rng),
            ))),
        };
        #[allow(unused_mut)] // mutated only by the store-feature attach below
        let mut manager = Self::build_manager(&config, &topo, &scheme);
        #[cfg(feature = "store")]
        let store_handle = MemBackend::new();
        // A fresh store attaches as a trivially warm no-op; the handle is
        // kept so crash recovery can re-open the same device later.
        #[cfg(feature = "store")]
        let persistence = if config.store.enabled && config.nwade_enabled {
            ImPersistence::attach(
                Box::new(store_handle.clone()),
                config.store.snapshot_every,
                &mut manager,
            )
            .ok()
            .map(|(p, _)| p)
        } else {
            None
        };
        let im_malicious = config.attack.is_some_and(|a| a.setting.im_malicious());
        let imu = ImuAgent::new(manager, topo.clone(), scheme.clone(), im_malicious);

        let mut demand =
            DemandGenerator::new(config.density, config.turn_mix, config.initial_speed);
        let mut spawns = demand.generate(&topo, config.duration, &mut rng);
        // Shift every arrival into this shard's id space. A base of 0
        // (the default) leaves single-intersection runs bit-identical.
        if config.vehicle_id_base != 0 {
            for ev in &mut spawns {
                ev.id = VehicleId::new(config.vehicle_id_base + ev.id.raw());
            }
        }

        let mut medium = Medium::new(config.medium.clone());
        medium.set_position(NodeId::Imu, Vec2::ZERO);

        Simulation {
            topo,
            rng,
            medium,
            imu,
            vehicles: BTreeMap::new(),
            spawn_queue: spawns.into(),
            pending_requests: AdmissionQueue::new(),
            window_pipeline: None,
            pipeline_tip: None,
            now: 0.0,
            metrics: SimMetrics::default(),
            scheme,
            last_window: 0.0,
            last_sense: 0.0,
            attack_deployed: false,
            violator: None,
            accused: None,
            colluders: HashSet::new(),
            false_report_schedule: Vec::new(),
            adversary_deployed: false,
            adaptive: None,
            sybil_next_fire: 0.0,
            sybil_target: None,
            corrupted_index: None,
            collided: HashSet::new(),
            threat_cleared: false,
            last_block_index: None,
            bogus_claim_index: None,
            announced_evacuating: HashSet::new(),
            last_announce: std::collections::HashMap::new(),
            invariants: InvariantChecker::new(),
            im_was_down: false,
            forced_outage: None,
            #[cfg(feature = "store")]
            crash_fired: false,
            #[cfg(feature = "store")]
            store_handle,
            #[cfg(feature = "store")]
            persistence,
            threads: resolve_threads(config.engine),
            ticks: 0,
            boundary_exits: HashSet::new(),
            outbound_handoffs: Vec::new(),
            inbound_handoffs: VecDeque::new(),
            handoff_wait: BTreeMap::new(),
            scratch: TickScratch {
                positions: Vec::new(),
                sense: Vec::new(),
                snapshots: Vec::new(),
                points: Vec::new(),
                pair_grid: GridIndex::with_cell(2.0 * COLLISION_DISTANCE),
                brake_grid: GridIndex::with_cell(BRAKE_GRID_CELL),
                sense_grid: GridIndex::with_cell(config.nwade.sensing_radius),
            },
            config,
        }
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Snapshot of every active vehicle: `(id, position, speed, mode,
    /// malicious)`.
    pub fn vehicle_snapshot(&self) -> Vec<(VehicleId, Vec2, f64, DriveMode, bool)> {
        self.vehicles
            .values()
            .filter(|v| v.is_active())
            .map(|v| {
                (
                    v.id,
                    v.position(&self.topo),
                    v.speed,
                    v.mode,
                    v.is_malicious(),
                )
            })
            .collect()
    }

    /// Metrics collected so far (final totals only after [`Simulation::run`]).
    pub fn metrics_so_far(&self) -> &SimMetrics {
        &self.metrics
    }

    /// The invariant report accumulated so far (final copy lands in
    /// [`SimMetrics::invariants`] after the run).
    pub fn invariants_so_far(&self) -> &crate::invariant::InvariantReport {
        self.invariants.report()
    }

    /// Active vehicles the world still treats as publicly self-evacuating
    /// although their guard no longer is — after an outage recovery this
    /// must drain to zero (no lingering global-report state).
    pub fn lingering_announcements(&self) -> usize {
        self.announced_evacuating
            .iter()
            .filter(|id| {
                self.vehicles
                    .get(&id.raw())
                    .is_some_and(|v| v.is_active() && !v.guard.is_evacuating())
            })
            .count()
    }

    // ----- bench / differential-test drivers -----------------------

    /// Number of vehicles currently inside the modeled area.
    pub fn active_vehicle_count(&self) -> usize {
        self.vehicles.values().filter(|v| v.is_active()).count()
    }

    /// Ticks advanced since construction — the forensic clock.
    pub fn ticks_elapsed(&self) -> u64 {
        self.ticks
    }

    /// Digest of the full world state at the current tick.
    ///
    /// Covers everything that shapes the rest of the run: the clock,
    /// the RNG stream position (probed by drawing from a clone, which
    /// leaves the live stream untouched), every vehicle's kinematic and
    /// protocol-visible state, the chain tip, the in-flight message
    /// queue, and the headline metric counters. Two worlds with equal
    /// hashes at every tick of a range evolved identically over it;
    /// the replay layer compares these tick by tick to pin the
    /// bit-identical-resimulation guarantee.
    pub fn state_hash(&self) -> u64 {
        use rand::Rng;
        let mut h = StateHasher::new();
        h.u64(self.ticks);
        h.f64(self.now);
        h.f64(self.last_window);
        h.f64(self.last_sense);
        h.u64(self.rng.clone().gen::<u64>());
        h.u64(self.vehicles.len() as u64);
        for v in self.vehicles.values() {
            h.u64(v.id.raw());
            h.f64(v.s);
            h.f64(v.speed);
            h.f64(v.lateral);
            h.u64(match v.mode {
                DriveMode::Cruise => 0,
                DriveMode::FollowPlan => 1,
                DriveMode::Violate(t) => 2 ^ t.to_bits().rotate_left(2),
                DriveMode::SelfEvacuate => 3,
            });
            h.u64(u64::from(v.is_active()));
            h.u64(v.plan.as_ref().map_or(u64::MAX, |p| p.id().raw()));
        }
        h.u64(self.imu.manager.chain_next_index());
        let tip = self.imu.manager.chain_tip();
        let mut tip8 = [0u8; 8];
        tip8.copy_from_slice(&tip.as_bytes()[..8]);
        h.u64(u64::from_be_bytes(tip8));
        h.u64(self.medium.flight_digest());
        h.u64(self.spawn_queue.len() as u64);
        h.u64(self.pending_requests.len() as u64);
        h.u64(self.pending_requests.total_deferrals());
        h.u64(self.metrics.spawned as u64);
        h.u64(self.metrics.exited as u64);
        h.u64(self.metrics.blocks_broadcast as u64);
        h.u64(self.metrics.plans_scheduled as u64);
        h.u64(self.metrics.benign_self_evacuations as u64);
        h.u64(self.metrics.accidents as u64);
        h.u64(self.invariants.report().total() as u64);
        h.u64(self.announced_evacuating.len() as u64);
        h.u64(self.colluders.len() as u64);
        h.u64(u64::from(self.attack_deployed));
        h.u64(u64::from(self.threat_cleared));
        h.u64(u64::from(self.adversary_deployed));
        if let Some(st) = &self.adaptive {
            h.u64(st.id.raw());
            h.f64(st.lo);
            h.f64(st.hi);
            h.f64(st.amp);
            h.f64(st.epoch_start);
            h.u64(u64::from(st.reported_this_epoch));
        }
        h.f64(self.sybil_next_fire);
        h.u64(self.sybil_target.map_or(u64::MAX, |v| v.raw()));
        h.u64(self.outbound_handoffs.len() as u64);
        for hof in &self.outbound_handoffs {
            h.u64(hof.id.raw());
            h.f64(hof.speed);
            h.u64(hof.exit_leg.index() as u64);
            h.u64(u64::from(hof.false_reports));
        }
        h.u64(self.inbound_handoffs.len() as u64);
        for (leg, hof, queued_at) in &self.inbound_handoffs {
            h.u64(leg.index() as u64);
            h.u64(hof.id.raw());
            h.f64(*queued_at);
        }
        h.u64(self.handoff_wait.len() as u64);
        h.u64(self.metrics.handoffs_out as u64);
        h.u64(self.metrics.handoffs_in as u64);
        h.u64(self.metrics.boundary_latency_samples as u64);
        h.finish()
    }

    /// Advances the world by exactly one tick. Benchmarks drive the
    /// engine through this instead of [`Simulation::run`] so they can
    /// time individual ticks against a prepared fleet.
    pub fn tick_once(&mut self) {
        self.tick();
    }

    /// Runs one sensing pass immediately, ignoring the sense-interval
    /// cadence — isolates Algorithm 2 for latency measurements.
    pub fn force_sense_pass(&mut self) {
        self.retune_threads();
        let now = self.now;
        self.sense_pass(now);
    }

    /// Queues plan requests as if up to `max` active vehicles had just
    /// asked the manager; returns `(offered, queued)` — how many active
    /// vehicles wanted a plan and how many were actually enqueued. When
    /// the cap binds, the batch is cut by *deadline* (soonest predicted
    /// box arrival first, vehicle ID breaking ties) rather than by map
    /// iteration order, so the selection is deterministic and never
    /// starves the vehicles closest to the stop line. The shed gap is
    /// exported through [`SimMetrics`] (`requests_shed`,
    /// `last_window_shed_gap`) so a binding cap is never silent. Pairs
    /// with [`Simulation::force_process_window`] to measure
    /// window-processing latency at a controlled request count.
    pub fn enqueue_plan_requests(&mut self, max: usize) -> (usize, usize) {
        let now = self.now;
        let mut candidates: Vec<(f64, PlanRequest)> = self
            .vehicles
            .values()
            .filter(|v| v.is_active())
            .map(|v| {
                let movement = self.topo.movement(v.movement);
                let deadline = (movement.box_entry() - v.s) / v.speed.max(0.1);
                (
                    deadline,
                    PlanRequest {
                        id: v.id,
                        descriptor: v.descriptor.clone(),
                        movement: v.movement,
                        position_s: v.s,
                        speed: v.speed,
                    },
                )
            })
            .collect();
        let offered = candidates.len();
        if offered > max {
            candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.raw().cmp(&b.1.id.raw())));
            candidates.truncate(max);
        }
        let queued = candidates.len();
        for (_, req) in candidates {
            self.pending_requests.push(now, req);
        }
        let shed = offered - queued;
        self.metrics.requests_shed += shed;
        self.metrics.last_window_shed_gap = shed;
        if shed > 0 {
            self.metrics.shed_windows += 1;
        }
        (offered, queued)
    }

    /// Runs one manager processing window immediately (scheduling,
    /// packaging, broadcast), ignoring the window cadence.
    pub fn force_process_window(&mut self) {
        let now = self.now;
        self.process_window(now);
    }

    /// Drives `rounds` back-to-back processing windows over the current
    /// fleet and measures each one, re-offering every active vehicle per
    /// round. In `pipelined` mode window `N+1`'s scheduling overlaps
    /// window `N`'s signing on the sealing worker (sealed blocks are
    /// collected opportunistically, the tail drained at the end);
    /// sequential mode runs each window start-to-finish on the calling
    /// thread. Both modes apply `config.admission` and drive the real
    /// manager, but bypass the VANET and persistence layers — the
    /// measured work is admission + scheduling + packaging + signing.
    /// Returns the per-window points and the total plans sealed into
    /// blocks.
    pub fn bench_window_throughput(
        &mut self,
        rounds: usize,
        pipelined: bool,
    ) -> (Vec<WindowBenchPoint>, usize) {
        let window = self.nwade_cfg().processing_window;
        let mut points = Vec::with_capacity(rounds);
        let mut sealed = 0usize;
        let mut pipeline = pipelined.then(|| WindowPipeline::for_manager(&self.imu.manager));
        for _ in 0..rounds {
            self.now += window;
            let now = self.now;
            self.enqueue_plan_requests(usize::MAX);
            let start = std::time::Instant::now();
            let requests = self.admit_pending(now);
            let deferred = self.metrics.last_window_shed_gap;
            match pipeline.as_mut() {
                Some(pipeline) => {
                    if let Some(prepared) = self.imu.manager.prepare_window(&requests, now) {
                        pipeline.submit(prepared);
                    }
                    for block in pipeline.try_collect() {
                        if let ManagerAction::BroadcastBlock(b) =
                            self.imu.manager.absorb_sealed(block)
                        {
                            sealed += b.plans().len();
                        }
                    }
                }
                None => {
                    if let Some(ManagerAction::BroadcastBlock(b)) =
                        self.imu.manager.on_window(&requests, now)
                    {
                        sealed += b.plans().len();
                    }
                }
            }
            points.push(WindowBenchPoint {
                offered: requests.len() + deferred,
                admitted: requests.len(),
                deferred,
                latency_s: start.elapsed().as_secs_f64(),
            });
        }
        if let Some(mut pipeline) = pipeline {
            for block in pipeline.drain() {
                if let ManagerAction::BroadcastBlock(b) = self.imu.manager.absorb_sealed(block) {
                    sealed += b.plans().len();
                }
            }
        }
        (points, sealed)
    }

    /// Pre-places up to `n` slow-cruising vehicles single-file on the
    /// approach lanes and returns how many fit. This is the benchmark
    /// fleet: deterministic (no RNG draws), dense enough to exercise the
    /// neighbourhood scans, and quiescent — 8 m spacing at 1 m/s keeps
    /// every vehicle outside its leader's braking envelope, and the dummy
    /// cruise plan (mode stays `Cruise`) suppresses plan-request traffic.
    /// Vehicles in one lane share the approach geometry, so single-file
    /// placement cannot overlap across movements.
    pub fn prespawn_fleet(&mut self, n: usize) -> usize {
        const SPACING: f64 = 8.0;
        const FIRST_S: f64 = 4.0;
        const SPEED: f64 = 1.0;
        let mut lanes: BTreeMap<(LegId, usize), Vec<MovementId>> = BTreeMap::new();
        for m in self.topo.movements() {
            lanes
                .entry((m.from_leg(), m.from_lane()))
                .or_default()
                .push(m.id());
        }
        let lanes: Vec<Vec<MovementId>> = lanes.into_values().collect();
        let mut placed = 0usize;
        let mut row = 0usize;
        while placed < n {
            let mut any_fit = false;
            for movements in &lanes {
                if placed >= n {
                    break;
                }
                let s = FIRST_S + row as f64 * SPACING;
                let limit = movements
                    .iter()
                    .map(|m| self.topo.movement(*m).box_entry())
                    .fold(f64::INFINITY, f64::min)
                    - 10.0;
                if s > limit {
                    continue;
                }
                any_fit = true;
                let movement = movements[row % movements.len()];
                let id = VehicleId::new(1_000_000 + self.config.vehicle_id_base + placed as u64);
                let descriptor = VehicleDescriptor {
                    brand: "bench".into(),
                    model: "fleet".into(),
                    color: "grey".into(),
                };
                let guard = VehicleGuard::new(
                    id,
                    self.topo.clone(),
                    self.scheme.clone(),
                    self.config.nwade,
                );
                let mut agent =
                    VehicleAgent::new(id, movement, descriptor.clone(), guard, SPEED, self.now);
                agent.s = s;
                let path = self.topo.movement(movement).path();
                agent.plan = Some(TravelPlan::new(
                    id,
                    descriptor,
                    nwade_aim::VehicleStatus {
                        position: path.point_at(s),
                        speed: SPEED,
                        heading: path.heading_at(s),
                    },
                    movement,
                    MotionProfile::cruise(self.now, SPEED, path.length()),
                ));
                let pos = agent.position(&self.topo);
                self.medium.set_position(NodeId::Vehicle(id.raw()), pos);
                self.vehicles.insert(id.raw(), agent);
                self.metrics.spawned += 1;
                placed += 1;
            }
            if !any_fit {
                break; // every lane is full
            }
            row += 1;
        }
        placed
    }

    /// Runs to completion and returns the report.
    pub fn run(self) -> SimReport {
        self.run_with(|_| {})
    }

    /// Runs to completion, calling `observer` after every tick — for
    /// visualization, live metrics, or custom probes.
    pub fn run_with(mut self, mut observer: impl FnMut(&Simulation)) -> SimReport {
        let ticks = (self.config.duration / self.config.dt).ceil() as u64;
        for _ in 0..ticks {
            self.tick();
            observer(&self);
        }
        self.metrics.duration = self.config.duration;
        self.metrics.network = self.medium.stats().clone();
        self.metrics.invariants = std::mem::take(&mut self.invariants).finish();
        SimReport {
            setting: self.config.attack.map(|a| a.setting),
            kind: self.config.kind,
            density: self.config.density,
            nwade_enabled: self.config.nwade_enabled,
            metrics: self.metrics,
        }
    }

    fn nwade_cfg(&self) -> &NwadeConfig {
        &self.config.nwade
    }

    fn tick(&mut self) {
        self.ticks += 1;
        self.now += self.config.dt;
        let now = self.now;

        let im_down = self.im_down(now);
        if self.im_was_down && !im_down {
            self.im_restart(now);
        }
        self.im_was_down = im_down;

        self.spawn_due(now);
        self.admit_inbound(now);
        self.retune_threads();
        self.rerequest_plans(now);
        self.rebroadcast_announcements(now);
        self.deploy_attack(now);
        self.deploy_adversary(now);
        self.drive_adversary(now);
        self.fire_false_reports(now);
        self.step_physics(now);
        self.divergence_check(now);
        self.detect_collisions();
        self.deliver_messages(now);
        if now - self.last_sense >= self.config.sense_interval {
            self.last_sense = now;
            self.sense_pass(now);
        }
        if now - self.last_window >= self.nwade_cfg().processing_window {
            self.last_window = now;
            if !im_down {
                self.process_window(now);
            }
            // Chain integrity is checked at window cadence (the chain
            // only grows in windows; per-tick would re-verify the same
            // blocks ten times over).
            let chain = self.imu.manager.blocks_from(0);
            self.invariants.check_chain(&chain, now);
        }
        self.check_threat_cleared();
        self.check_vehicle_invariants(now);
    }

    /// Re-resolves the worker-thread count from the current fleet size.
    /// Only [`EngineChoice::Auto`] actually varies: it drops to the
    /// serial path while the fleet is too small for chunked fan-out to
    /// amortize thread-spawn cost (thread count never changes results).
    fn retune_threads(&mut self) {
        self.threads =
            crate::engine::resolve_threads_sized(self.config.engine, self.active_vehicle_count());
    }

    /// Builds the manager + scheduler stack from the config (used at
    /// construction and again when crash recovery restarts the process).
    fn build_manager(
        config: &SimConfig,
        topo: &Arc<Topology>,
        scheme: &Arc<dyn SignatureScheme>,
    ) -> NwadeManager {
        let sched_cfg = SchedulerConfig {
            limits: config.limits,
            probe: config.probe_scheduler,
            // The scheduler's read-only pre-pass fans out over request
            // chunks; the fan-out primitives fall back to inline below
            // their size cutoff, so small windows stay serial either way.
            threads: resolve_threads(config.engine),
            ..SchedulerConfig::default()
        };
        let scheduler: Box<dyn Scheduler + Send> = match config.scheduler {
            SchedulerChoice::Reservation => {
                Box::new(ReservationScheduler::new(topo.clone(), sched_cfg))
            }
            SchedulerChoice::Fcfs => Box::new(FcfsScheduler::new(topo.clone(), sched_cfg)),
            SchedulerChoice::TrafficLight => Box::new(TrafficLightScheduler::new(
                topo.clone(),
                sched_cfg,
                Default::default(),
            )),
        };
        NwadeManager::new(topo.clone(), scheduler, scheme.clone(), config.nwade)
    }

    /// `true` while the manager is inside a configured or crash-imposed
    /// outage window.
    fn im_down(&self, now: f64) -> bool {
        self.config.im_outage.is_some_and(|o| o.covers(now))
            || self.forced_outage.is_some_and(|o| o.covers(now))
    }

    /// The manager comes back from an outage. With the durable store
    /// active, a fresh manager is rebuilt from snapshot + WAL replay
    /// (warm: reservations and chain tip intact); otherwise — or when
    /// the store is unusable — the existing cold path runs: transient
    /// conversational state (in-flight report verifications) is gone,
    /// the chain and the published-plan ledger survive. Vehicles that
    /// self-evacuated on the IM timeout re-admit themselves when the
    /// next fresh block they can verify against their cached chain
    /// arrives — no special resync message exists, exactly as in the
    /// paper's model where the chain is the only shared state.
    fn im_restart(&mut self, now: f64) {
        if self.forced_outage.take().is_some() {
            // End of a cold-crash downtime: the warm/cold decision was
            // made (and counted) at crash time; the manager just wakes.
            self.imu.manager.restart();
            return;
        }
        #[cfg(feature = "store")]
        if self.persistence.is_some() && self.try_warm_swap(now) {
            self.metrics.warm_recoveries += 1;
            return;
        }
        let _ = now;
        self.imu.manager.restart();
        self.metrics.cold_recoveries += 1;
    }

    /// Rebuilds the manager from the durable store. On success the
    /// recovered manager replaces the live one and committed-but-
    /// unbroadcast blocks go out; on failure (`Cold` or a device error)
    /// the live manager is left untouched and persistence stays off.
    #[cfg(feature = "store")]
    fn try_warm_swap(&mut self, now: f64) -> bool {
        self.persistence = None;
        let mut fresh = Self::build_manager(&self.config, &self.topo, &self.scheme);
        let attached = ImPersistence::attach(
            Box::new(self.store_handle.clone()),
            self.config.store.snapshot_every,
            &mut fresh,
        );
        match attached {
            Ok((persist, RecoveryOutcome::Warm(warm))) => {
                self.imu.manager = fresh;
                self.persistence = Some(persist);
                self.metrics.wal_truncated_bytes += warm.truncated_bytes;
                let rebroadcast: Vec<ImuAction> = warm
                    .actions
                    .into_iter()
                    .filter_map(|a| match a {
                        ManagerAction::BroadcastBlock(b) => Some(ImuAction::Broadcast(b)),
                        _ => None,
                    })
                    .collect();
                self.handle_imu_actions(rebroadcast, now);
                true
            }
            Ok((_, RecoveryOutcome::Cold { reason })) => {
                if std::env::var("NWADE_DEBUG").is_ok() {
                    eprintln!("[nwade-debug] t={now:.2} warm recovery refused: {reason}");
                }
                false
            }
            Err(e) => {
                if std::env::var("NWADE_DEBUG").is_ok() {
                    eprintln!("[nwade-debug] t={now:.2} store unreadable: {e}");
                }
                false
            }
        }
    }

    /// Turns durability off after a device error (the log can no longer
    /// be trusted to match the manager).
    #[cfg(feature = "store")]
    fn disable_store(&mut self, context: &str) {
        eprintln!("[nwade-sim] durable store failed ({context}); disabling durability");
        self.persistence = None;
    }

    /// The configured crash, when it is due to fire this window.
    #[cfg(feature = "store")]
    fn due_crash(&self, now: f64) -> Option<crate::config::CrashPlan> {
        let plan = self.config.im_crash?;
        (!self.crash_fired && now >= plan.at).then_some(plan)
    }

    /// Kills the manager process at the given crash point, mid-window.
    /// `staged` is the block the dying window produced (discarded —
    /// never broadcast by the crashing process). Recovery then either
    /// comes back warm the same tick, or goes dark for the cold
    /// downtime.
    #[cfg(feature = "store")]
    fn crash_im(
        &mut self,
        plan: crate::config::CrashPlan,
        staged: Option<nwade_chain::Block>,
        now: f64,
    ) {
        self.crash_fired = true;
        self.metrics.im_crashes += 1;
        self.metrics.im_crash_time = Some(now);
        let had_store = self.persistence.is_some();
        match plan.point {
            CrashPoint::AfterStage => {
                // Nothing about the staged block reached the device.
                self.store_handle.crash(0);
            }
            CrashPoint::BeforeCommit => {
                // The commit record dies half-written: a torn tail the
                // recovery scan must truncate.
                if let (Some(p), Some(b)) = (self.persistence.as_mut(), staged.as_ref()) {
                    let _ = p.commit_block(b, false);
                }
                self.store_handle.crash(10);
            }
            CrashPoint::AfterCommit => {
                // Committed and durable, but the broadcast never went
                // out: recovery must re-send exactly this block.
                if let (Some(p), Some(b)) = (self.persistence.as_mut(), staged.as_ref()) {
                    let _ = p.commit_block(b, true);
                }
                self.store_handle.crash(0);
            }
        }
        self.persistence = None; // the process died with its handle
        if had_store && self.try_warm_swap(now) {
            self.metrics.warm_recoveries += 1;
            return;
        }
        // Cold: the in-memory state of the crashed process is gone and
        // the store cannot reconstruct it. The manager stays dark while
        // it restores from the persisted chain (the same fiction as
        // `ImOutage`), and the outage-end edge restarts it.
        self.metrics.cold_recoveries += 1;
        self.forced_outage = Some(ImOutage {
            start: now,
            duration: plan.cold_downtime,
        });
        self.im_was_down = true;
    }

    /// The manager's durable chain height (index of the next block) —
    /// recovery differential tests compare this across runs.
    pub fn chain_next_index(&self) -> u64 {
        self.imu.manager.chain_next_index()
    }

    /// The manager's chain tip hash `h_{i-1}`.
    pub fn chain_tip(&self) -> nwade_crypto::Digest {
        self.imu.manager.chain_tip()
    }

    /// Ground-truth and protocol-consistency invariants, every tick.
    /// Snapshotting is a pure per-vehicle map fanned out over the worker
    /// pool; the overlap sweep runs over the pair grid when the spatial
    /// index is enabled.
    fn check_vehicle_invariants(&mut self, now: f64) {
        let topo = &self.topo;
        let actives: Vec<&VehicleAgent> =
            self.vehicles.values().filter(|v| v.is_active()).collect();
        let snaps = fan_out(&actives, self.threads, |chunk| {
            chunk
                .iter()
                .map(|v| VehicleSnapshot {
                    id: v.id,
                    position: v.position(topo),
                    active: true,
                    malicious: v.is_malicious(),
                    evacuating: v.guard.is_evacuating(),
                    state_self_evacuation: v.guard.state()
                        == nwade::fsm::vehicle::VehicleState::SelfEvacuation,
                    mode_self_evacuate: v.mode == DriveMode::SelfEvacuate,
                })
                .collect()
        });
        drop(actives);
        {
            let scratch = &mut self.scratch;
            scratch.snapshots.clear();
            scratch.snapshots.extend(snaps);
            if self.config.spatial_index {
                scratch.points.clear();
                scratch
                    .points
                    .extend(scratch.snapshots.iter().map(|s| s.position));
                scratch.pair_grid.rebuild(&scratch.points);
            }
        }
        let grid = self.config.spatial_index.then_some(&self.scratch.pair_grid);
        self.invariants.check_vehicles(
            &self.scratch.snapshots,
            grid,
            &self.collided,
            COLLISION_DISTANCE,
            now,
        );
    }

    // ----- spawning -------------------------------------------------

    fn spawn_due(&mut self, now: f64) {
        while let Some(front) = self.spawn_queue.front() {
            if front.time > now {
                break;
            }
            // Gate: the lane entry must be clear far enough that the new
            // vehicle could brake to a stop behind stalled traffic.
            let spawn_gap = self.config.limits.stopping_distance(front.speed) + 30.0;
            let movement = self.topo.movement(front.movement);
            let lane_key = (movement.from_leg(), movement.from_lane());
            let blocked = self.vehicles.values().any(|v| {
                if !v.is_active() {
                    return false;
                }
                let m = self.topo.movement(v.movement);
                (m.from_leg(), m.from_lane()) == lane_key && v.s < spawn_gap
            });
            if blocked {
                // Hold the spawn until the lane clears.
                let mut ev = self.spawn_queue.pop_front().expect("front exists");
                ev.time = now + 1.0;
                // Keep the queue time-ordered by reinserting behind any
                // earlier events.
                let pos = self
                    .spawn_queue
                    .iter()
                    .position(|e| e.time > ev.time)
                    .unwrap_or(self.spawn_queue.len());
                self.spawn_queue.insert(pos, ev);
                continue;
            }
            let ev = self.spawn_queue.pop_front().expect("front exists");
            self.spawn(ev, now);
        }
    }

    fn spawn(&mut self, ev: SpawnEvent, now: f64) {
        let guard = VehicleGuard::new(
            ev.id,
            self.topo.clone(),
            self.scheme.clone(),
            self.config.nwade,
        );
        let agent = VehicleAgent::new(
            ev.id,
            ev.movement,
            ev.descriptor.clone(),
            guard,
            ev.speed,
            now,
        );
        let pos = agent.position(&self.topo);
        self.medium.set_position(NodeId::Vehicle(ev.id.raw()), pos);
        self.vehicles.insert(ev.id.raw(), agent);
        self.metrics.spawned += 1;
        // Request a plan from the manager.
        let req = PlanRequest {
            id: ev.id,
            descriptor: ev.descriptor,
            movement: ev.movement,
            position_s: 0.0,
            speed: ev.speed,
        };
        self.medium.send(
            NodeId::Vehicle(ev.id.raw()),
            Recipient::Unicast(NodeId::Imu),
            class::PLAN_REQUEST,
            NwadeMessage::PlanRequest(req),
            now,
            &mut self.rng,
        );
    }

    /// Re-admits queued handoffs whose entry lane is clear by the same
    /// stopping-distance gate spawns use. The vehicle materialises at
    /// the entry of a deterministically chosen movement (keyed by its
    /// id), its role and ledger standing carry over, and it requests a
    /// plan through the normal path — to the manager it is
    /// indistinguishable from a spawn. Blocked handoffs stay queued in
    /// arrival order.
    fn admit_inbound(&mut self, now: f64) {
        if self.inbound_handoffs.is_empty() {
            return;
        }
        let queued = std::mem::take(&mut self.inbound_handoffs);
        for (entry, handoff, queued_at) in queued {
            let movements = self.topo.movements_from(entry);
            let movement = match movements.len() {
                0 => {
                    // No route continues from this leg: the vehicle
                    // leaves the modeled city here instead.
                    self.metrics.exited += 1;
                    continue;
                }
                n => movements[(handoff.id.raw() % n as u64) as usize].id(),
            };
            let speed = handoff.speed;
            let spawn_gap = self.config.limits.stopping_distance(speed) + 30.0;
            let m = self.topo.movement(movement);
            let lane_key = (m.from_leg(), m.from_lane());
            let blocked = self.vehicles.values().any(|v| {
                if !v.is_active() {
                    return false;
                }
                let vm = self.topo.movement(v.movement);
                (vm.from_leg(), vm.from_lane()) == lane_key && v.s < spawn_gap
            });
            if blocked {
                self.inbound_handoffs.push_back((entry, handoff, queued_at));
                continue;
            }
            let guard = VehicleGuard::new(
                handoff.id,
                self.topo.clone(),
                self.scheme.clone(),
                self.config.nwade,
            );
            let mut agent = VehicleAgent::new(
                handoff.id,
                movement,
                handoff.descriptor.clone(),
                guard,
                speed,
                now,
            );
            agent.role = handoff.role;
            // Ledger standing follows the vehicle: the receiving manager
            // seeds its tally from the departing manager's.
            self.imu
                .manager
                .note_reporter_history(handoff.id, handoff.false_reports);
            let pos = agent.position(&self.topo);
            self.medium
                .set_position(NodeId::Vehicle(handoff.id.raw()), pos);
            self.vehicles.insert(handoff.id.raw(), agent);
            self.metrics.handoffs_in += 1;
            self.handoff_wait.insert(handoff.id.raw(), queued_at);
            let req = PlanRequest {
                id: handoff.id,
                descriptor: handoff.descriptor,
                movement,
                position_s: 0.0,
                speed,
            };
            self.medium.send(
                NodeId::Vehicle(handoff.id.raw()),
                Recipient::Unicast(NodeId::Imu),
                class::PLAN_REQUEST,
                NwadeMessage::PlanRequest(req),
                now,
                &mut self.rng,
            );
        }
    }

    /// Closes the boundary re-admission latency sample the first time a
    /// handed-off vehicle is assigned a plan in this shard.
    fn note_boundary_admission(&mut self, id: u64, now: f64) {
        if let Some(queued_at) = self.handoff_wait.remove(&id) {
            self.metrics.boundary_latency_total += now - queued_at;
            self.metrics.boundary_latency_samples += 1;
        }
    }

    // ----- city-grid boundary hooks ---------------------------------

    /// Declares which legs border a neighbouring intersection. Vehicles
    /// whose movement terminates on one of these legs are serialized
    /// into [`Handoff`] records instead of exiting.
    pub fn set_boundary_exits(&mut self, legs: impl IntoIterator<Item = LegId>) {
        self.boundary_exits = legs.into_iter().collect();
    }

    /// Drains the handoffs produced since the last call. The city layer
    /// collects these in shard-ID order during its serialized commit
    /// phase.
    pub fn take_outbound_handoffs(&mut self) -> Vec<Handoff> {
        std::mem::take(&mut self.outbound_handoffs)
    }

    /// Queues a vehicle arriving from a neighbouring shard for
    /// re-admission at `entry` once the lane is clear.
    pub fn queue_inbound_handoff(&mut self, entry: LegId, handoff: Handoff) {
        self.inbound_handoffs.push_back((entry, handoff, self.now));
    }

    /// Handoffs still waiting for a clear entry lane.
    pub fn inbound_backlog(&self) -> usize {
        self.inbound_handoffs.len()
    }

    /// Feeds a neighbouring manager's chain tip to this shard's manager
    /// for cross-shard anchoring; it is embedded into the next sealed
    /// block.
    pub fn note_neighbor_tip(&mut self, shard: u32, tip: Digest) {
        self.imu.manager.note_neighbor_tip(shard, tip);
    }

    /// Blocks at or after `from` from the manager's recent-block store
    /// (bounded; the city's anchor audit polls every tick, well inside
    /// the retention window).
    pub fn blocks_from(&self, from: u64) -> Vec<nwade_chain::Block> {
        self.imu.manager.blocks_from(from)
    }

    /// The manager's false-report tally for `id` — observable so tests
    /// can pin that ledger standing follows a handed-off vehicle.
    pub fn false_report_count(&self, id: VehicleId) -> u32 {
        self.imu.manager.false_report_count(id)
    }

    /// The configuration this simulation runs under.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Vehicles still cruising without a plan (their plan was deferred by
    /// the manager or the block was lost) ask again on their retrier's
    /// backoff schedule. An exhausted retrier means the manager has been
    /// unreachable through every attempt: the vehicle keeps cruising
    /// planless, exactly the degraded state the old fixed-interval resend
    /// ended in — but now with bounded, jittered channel load.
    fn rerequest_plans(&mut self, now: f64) {
        let mut resend: Vec<PlanRequest> = Vec::new();
        for v in self.vehicles.values_mut() {
            if v.is_active() && v.mode == DriveMode::Cruise && v.plan.is_none() {
                if let RetryDecision::Fire(_) = v.plan_retry.poll(now) {
                    resend.push(PlanRequest {
                        id: v.id,
                        descriptor: v.descriptor.clone(),
                        movement: v.movement,
                        position_s: v.s,
                        speed: v.speed,
                    });
                }
            }
        }
        for req in resend {
            self.medium.send(
                NodeId::Vehicle(req.id.raw()),
                Recipient::Unicast(NodeId::Imu),
                class::PLAN_REQUEST,
                NwadeMessage::PlanRequest(req),
                now,
                &mut self.rng,
            );
        }
    }

    /// Self-evacuating vehicles re-broadcast their global report every
    /// couple of seconds so vehicles arriving after the first
    /// announcement also learn they are off-plan.
    fn rebroadcast_announcements(&mut self, now: f64) {
        let mut sends: Vec<(u64, nwade::messages::GlobalReport)> = Vec::new();
        for v in self.vehicles.values() {
            if !v.is_active() || !v.guard.is_evacuating() {
                continue;
            }
            let due = self
                .last_announce
                .get(&v.id.raw())
                .is_none_or(|t| now - t > 2.0);
            if !due {
                continue;
            }
            if v.guard.evacuation_claim().is_some() {
                // Re-broadcasts are pure self-announcements ("this
                // vehicle is off-plan"): they refresh note_threat at
                // late arrivals without inflating the original claim's
                // distinct-sender support.
                sends.push((
                    v.id.raw(),
                    GlobalReport {
                        sender: v.id,
                        claim: GlobalClaim::AbnormalVehicle { suspect: v.id },
                        time: now,
                    },
                ));
            }
        }
        for (id, report) in sends {
            self.last_announce.insert(id, now);
            self.medium.send(
                NodeId::Vehicle(id),
                Recipient::Broadcast,
                class::GLOBAL_REPORT,
                NwadeMessage::GlobalReport(report),
                now,
                &mut self.rng,
            );
        }
    }

    // ----- attack injection -----------------------------------------

    fn deploy_attack(&mut self, now: f64) {
        let Some(plan) = self.config.attack else {
            return;
        };
        if self.attack_deployed || now < plan.start {
            return;
        }
        use rand::Rng;
        // Candidate violators: planned, still approaching the box.
        let candidates: Vec<u64> = self
            .vehicles
            .values()
            .filter(|v| {
                v.is_active()
                    && v.mode == DriveMode::FollowPlan
                    && v.speed > 5.0
                    && v.plan
                        .as_ref()
                        .is_some_and(|p| p.exit_time(&self.topo).is_some())
                    && v.s < self.topo.movement(v.movement).box_entry() - 40.0
            })
            .map(|v| v.id.raw())
            .collect();
        let needs_violator = plan.setting.plan_violations() > 0;
        if needs_violator && candidates.is_empty() {
            return; // retry next tick
        }
        self.attack_deployed = true;
        self.metrics.attack_start = Some(now);

        if needs_violator {
            let pick = candidates[self.rng.gen_range(0..candidates.len())];
            let violator = VehicleId::new(pick);
            self.violator = Some(violator);
            self.vehicles
                .get_mut(&pick)
                .expect("candidate exists")
                .start_violation(plan.violation, now);
            if plan.setting.im_malicious() {
                self.imu.shielded.insert(violator);
            }
        }
        if plan.setting == AttackSetting::Im {
            self.imu.corrupt_next_block = true;
        }

        // Colluders: other active vehicles become false reporters.
        let n_reporters = plan.setting.false_reports();
        let mut pool: Vec<u64> = self
            .vehicles
            .values()
            .filter(|v| v.is_active() && Some(v.id) != self.violator)
            .map(|v| v.id.raw())
            .collect();
        for i in 0..n_reporters.min(pool.len()) {
            let j = self.rng.gen_range(i..pool.len());
            pool.swap(i, j);
            let id = VehicleId::new(pool[i]);
            self.colluders.insert(id);
            self.vehicles
                .get_mut(&pool[i])
                .expect("pool member exists")
                .role = Role::FalseReporter;
            self.false_report_schedule
                .push((now + 0.5 + 0.2 * i as f64, id));
        }
        // The innocent vehicle the colluders accuse.
        let innocents: Vec<u64> = self
            .vehicles
            .values()
            .filter(|v| {
                v.is_active() && Some(v.id) != self.violator && !self.colluders.contains(&v.id)
            })
            .map(|v| v.id.raw())
            .collect();
        if !innocents.is_empty() {
            let pick = innocents[self.rng.gen_range(0..innocents.len())];
            self.accused = Some(VehicleId::new(pick));
        }
    }

    fn fire_false_reports(&mut self, now: f64) {
        if self.false_report_schedule.is_empty() {
            return;
        }
        let due: Vec<VehicleId> = self
            .false_report_schedule
            .iter()
            .filter(|(t, _)| *t <= now)
            .map(|(_, v)| *v)
            .collect();
        self.false_report_schedule.retain(|(t, _)| *t > now);
        for reporter in due {
            let Some(agent) = self.vehicles.get(&reporter.raw()) else {
                continue;
            };
            if !agent.is_active() {
                continue;
            }
            // Type A: accuse the innocent vehicle with fabricated evidence.
            if let Some(accused) = self.accused {
                if let Some(victim) = self.vehicles.get(&accused.raw()) {
                    let fabricated = Observation {
                        target: accused,
                        position: victim.position(&self.topo) + Vec2::new(40.0, 0.0),
                        speed: 0.0,
                        time: now,
                    };
                    self.medium.send(
                        NodeId::Vehicle(reporter.raw()),
                        Recipient::Unicast(NodeId::Imu),
                        class::INCIDENT_REPORT,
                        NwadeMessage::IncidentReport(IncidentReport {
                            reporter,
                            suspect: accused,
                            evidence: fabricated,
                            block_index: 0,
                        }),
                        now,
                        &mut self.rng,
                    );
                }
            }
            // Spread the false accusation globally too (threat iv:
            // "disseminate false traffic situations to mislead normal
            // vehicles").
            if let Some(accused) = self.accused {
                self.medium.send(
                    NodeId::Vehicle(reporter.raw()),
                    Recipient::Broadcast,
                    class::GLOBAL_REPORT,
                    NwadeMessage::GlobalReport(GlobalReport {
                        sender: reporter,
                        claim: GlobalClaim::AbnormalVehicle { suspect: accused },
                        time: now,
                    }),
                    now,
                    &mut self.rng,
                );
            }
            // Type B: falsely claim the manager's latest block carries
            // conflicting plans — an accusation peers can actually check.
            let bogus_index = self.last_block_index.unwrap_or(0);
            self.bogus_claim_index = Some(bogus_index);
            SimMetrics::note_first(&mut self.metrics.type_b_first_broadcast, now);
            self.medium.send(
                NodeId::Vehicle(reporter.raw()),
                Recipient::Broadcast,
                class::GLOBAL_REPORT,
                NwadeMessage::GlobalReport(GlobalReport {
                    sender: reporter,
                    claim: GlobalClaim::ConflictingPlans { index: bogus_index },
                    time: now,
                }),
                now,
                &mut self.rng,
            );
        }
    }

    // ----- adaptive adversaries (AttackPolicy) -----------------------

    /// Picks a planned, still-approaching vehicle the adaptive policy
    /// can compromise — the same candidate criterion as
    /// [`Simulation::deploy_attack`].
    fn adaptive_candidate(&mut self) -> Option<VehicleId> {
        use rand::Rng;
        let candidates: Vec<u64> = self
            .vehicles
            .values()
            .filter(|v| {
                v.is_active()
                    && v.mode == DriveMode::FollowPlan
                    && v.role == Role::Benign
                    && v.speed > 5.0
                    && v.plan
                        .as_ref()
                        .is_some_and(|p| p.exit_time(&self.topo).is_some())
                    && v.s < self.topo.movement(v.movement).box_entry() - 40.0
            })
            .map(|v| v.id.raw())
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let pick = candidates[self.rng.gen_range(0..candidates.len())];
        Some(VehicleId::new(pick))
    }

    /// Activates the configured [`AttackPolicy`] once its start time
    /// passes (retrying each tick until the fleet offers the roles it
    /// needs, like `deploy_attack`).
    fn deploy_adversary(&mut self, now: f64) {
        use rand::Rng;
        let Some(policy) = self.config.adversary else {
            return;
        };
        if self.adversary_deployed || now < policy.start() {
            return;
        }
        match policy {
            AttackPolicy::Adaptive(plan) => {
                let Some(id) = self.adaptive_candidate() else {
                    return; // retry next tick
                };
                // Role-malicious so the divergence check does not force
                // the probe pulses into a self-evacuation; the mode stays
                // FollowPlan — longitudinally the attacker executes its
                // published plan and only the lateral offset is forged.
                self.vehicles
                    .get_mut(&id.raw())
                    .expect("candidate exists")
                    .role = Role::Violator(ViolationKind::LaneDeviation);
                self.violator = Some(id);
                self.adaptive = Some(AdaptiveState::new(id, &plan, now));
                self.adversary_deployed = true;
                self.metrics.attack_start.get_or_insert(now);
            }
            AttackPolicy::Clique(plan) => {
                // Recruit `fraction` of the active fleet as colluders —
                // they stop sensing (sense_pass is benign-only), lie in
                // verification votes, and fabricate reports against one
                // innocent through the existing false-report machinery.
                let mut pool: Vec<u64> = self
                    .vehicles
                    .values()
                    .filter(|v| v.is_active() && v.role == Role::Benign)
                    .map(|v| v.id.raw())
                    .collect();
                let recruits = ((pool.len() as f64) * plan.fraction).round() as usize;
                if recruits == 0 {
                    return; // retry until the fleet is large enough
                }
                for i in 0..recruits {
                    let j = self.rng.gen_range(i..pool.len());
                    pool.swap(i, j);
                    let id = VehicleId::new(pool[i]);
                    self.colluders.insert(id);
                    self.vehicles
                        .get_mut(&pool[i])
                        .expect("pool member exists")
                        .role = Role::FalseReporter;
                    self.false_report_schedule
                        .push((now + 0.5 + 0.2 * i as f64, id));
                }
                self.metrics.clique_size = recruits;
                if self.accused.is_none() {
                    let innocents = &pool[recruits..];
                    if !innocents.is_empty() {
                        let pick = innocents[self.rng.gen_range(0..innocents.len())];
                        self.accused = Some(VehicleId::new(pick));
                    }
                }
                self.adversary_deployed = true;
                self.metrics.attack_start.get_or_insert(now);
            }
            AttackPolicy::Sybil(plan) => {
                let Some(target) = self.pick_sybil_target() else {
                    return; // retry next tick
                };
                self.sybil_target = Some(target);
                // Phantoms exist only on the radio: register a position
                // near the intersection so the medium delivers their
                // unicasts, but never spawn a vehicle agent.
                for i in 0..plan.count {
                    self.medium.set_position(
                        NodeId::Vehicle(SYBIL_ID_BASE + i as u64),
                        Vec2::new(5.0 * (i as f64 + 1.0), 0.0),
                    );
                }
                self.sybil_next_fire = now;
                self.adversary_deployed = true;
                self.metrics.attack_start.get_or_insert(now);
            }
        }
    }

    /// An active benign vehicle for the Sybil phantoms to accuse.
    fn pick_sybil_target(&mut self) -> Option<VehicleId> {
        use rand::Rng;
        let innocents: Vec<u64> = self
            .vehicles
            .values()
            .filter(|v| v.is_active() && v.role == Role::Benign)
            .map(|v| v.id.raw())
            .collect();
        if innocents.is_empty() {
            return None;
        }
        let pick = innocents[self.rng.gen_range(0..innocents.len())];
        Some(VehicleId::new(pick))
    }

    /// Per-tick adversary behaviour: the adaptive attacker's pulse /
    /// bisection schedule and the Sybil report volleys. (The clique
    /// needs no driving — recruitment rewired the existing colluder
    /// machinery.)
    fn drive_adversary(&mut self, now: f64) {
        let Some(policy) = self.config.adversary else {
            return;
        };
        if !self.adversary_deployed {
            return;
        }
        match policy {
            AttackPolicy::Adaptive(plan) => self.drive_adaptive(&plan, now),
            AttackPolicy::Sybil(plan) => self.fire_sybil_volley(&plan, now),
            AttackPolicy::Clique(_) => {}
        }
    }

    fn drive_adaptive(&mut self, plan: &crate::adversary::AdaptivePlan, now: f64) {
        let Some(mut st) = self.adaptive else {
            return;
        };
        // The probing vehicle eventually exits; move the campaign to a
        // fresh recruit, keeping the bisection bracket — the attacker
        // model is a persistent adversary who learns across vehicles.
        let gone = self
            .vehicles
            .get(&st.id.raw())
            .is_none_or(|v| !v.is_active() || v.mode == DriveMode::SelfEvacuate);
        if gone {
            let Some(next) = self.adaptive_candidate() else {
                self.adaptive = Some(st);
                return; // retry next tick
            };
            self.vehicles
                .get_mut(&next.raw())
                .expect("candidate exists")
                .role = Role::Violator(ViolationKind::LaneDeviation);
            self.violator = Some(next);
            st.id = next;
            st.epoch_start = now;
            st.reported_this_epoch = false;
        }
        if now - st.epoch_start >= plan.probe_period {
            st.close_epoch(now);
            self.metrics.adaptive_epochs += 1;
        }
        self.metrics.adaptive_amplitude = Some(st.amp);
        // Pulse during the first half of the epoch, recover to the lane
        // center for the second half — a report that arrives during the
        // quiet half still counts against the pulsed amplitude.
        let pulse = now - st.epoch_start < 0.5 * plan.probe_period;
        let lateral = if pulse { st.amp } else { 0.0 };
        if let Some(v) = self.vehicles.get_mut(&st.id.raw()) {
            if v.is_active() && v.mode == DriveMode::FollowPlan {
                v.lateral = lateral;
            }
        }
        self.adaptive = Some(st);
    }

    fn fire_sybil_volley(&mut self, plan: &crate::adversary::SybilPlan, now: f64) {
        if now < self.sybil_next_fire {
            return;
        }
        self.sybil_next_fire = now + plan.report_interval;
        // Re-target when the accused innocent leaves the world.
        let target_gone = self
            .sybil_target
            .and_then(|t| self.vehicles.get(&t.raw()))
            .is_none_or(|v| !v.is_active());
        if target_gone {
            self.sybil_target = self.pick_sybil_target();
        }
        let Some(target) = self.sybil_target else {
            return;
        };
        let Some(victim) = self.vehicles.get(&target.raw()) else {
            return;
        };
        let victim_pos = victim.position(&self.topo);
        for i in 0..plan.count {
            let reporter = VehicleId::new(SYBIL_ID_BASE + i as u64);
            let fabricated = Observation {
                target,
                position: victim_pos + Vec2::new(40.0, 0.0),
                speed: 0.0,
                time: now,
            };
            self.medium.send(
                NodeId::Vehicle(reporter.raw()),
                Recipient::Unicast(NodeId::Imu),
                class::INCIDENT_REPORT,
                NwadeMessage::IncidentReport(IncidentReport {
                    reporter,
                    suspect: target,
                    evidence: fabricated,
                    block_index: 0,
                }),
                now,
                &mut self.rng,
            );
            self.metrics.sybil_reports += 1;
        }
    }

    // ----- physics & ground truth ------------------------------------

    fn step_physics(&mut self, now: f64) {
        // Local collision avoidance (independent of the protocol): a
        // vehicle whose sensors see an obstacle ahead within its braking
        // envelope performs an emergency stop regardless of its plan —
        // real autonomy stacks never drive blindly into stopped traffic.
        struct BrakeState {
            id: u64,
            pos: Vec2,
            heading: Vec2,
            speed: f64,
            s: f64,
            movement: nwade_intersection::MovementId,
            lane: (nwade_intersection::LegId, usize),
            in_approach: bool,
            malicious: bool,
            on_plan: bool,
            /// Farthest arclength the current plan ever reaches (parked
            /// plans stop short; everything else is unbounded).
            plan_cap: f64,
        }
        let topo = &self.topo;
        let actives: Vec<&VehicleAgent> =
            self.vehicles.values().filter(|v| v.is_active()).collect();
        let states: Vec<BrakeState> = fan_out(&actives, self.threads, |chunk| {
            chunk
                .iter()
                .map(|v| {
                    let m = topo.movement(v.movement);
                    BrakeState {
                        id: v.id.raw(),
                        pos: v.position(topo),
                        heading: m.path().heading_at(v.s),
                        speed: v.speed,
                        s: v.s,
                        movement: v.movement,
                        lane: (m.from_leg(), m.from_lane()),
                        in_approach: v.s < m.box_entry(),
                        malicious: v.is_malicious(),
                        on_plan: matches!(v.mode, DriveMode::FollowPlan | DriveMode::Cruise),
                        plan_cap: match (&v.mode, &v.plan) {
                            (DriveMode::FollowPlan, Some(p)) if p.profile().final_speed() < 0.1 => {
                                p.profile().end_position()
                            }
                            _ => f64::INFINITY,
                        },
                    }
                })
                .collect()
        });
        drop(actives);
        let d_max = self.config.limits.d_max;
        // Conservative interaction radius for this tick: every rule below
        // is distance-bounded. The arclength rules reach at most the
        // braking envelope (paths are arclength-parameterized, so world
        // distance never exceeds the arclength gap plus both lateral
        // offsets); the headway cone reaches `cone`; the anticipation
        // rule reaches 40 m. Anything outside the radius cannot satisfy
        // any rule, so scanning only grid candidates is exact.
        let max_speed = states.iter().fold(0.0_f64, |m, s| m.max(s.speed));
        let brake_radius = (max_speed * max_speed / (2.0 * d_max) + 6.0)
            .max(3.0 + max_speed * 1.2)
            .max(40.0)
            + 2.0 * MAX_LATERAL
            + 4.0;
        let grid = if self.config.spatial_index {
            let scratch = &mut self.scratch;
            scratch.points.clear();
            scratch.points.extend(states.iter().map(|s| s.pos));
            scratch.brake_grid.rebuild(&scratch.points);
            Some(&self.scratch.brake_grid)
        } else {
            None
        };
        let braking: Vec<u64> = fan_out_indices(states.len(), self.threads, |range| {
            range
                .filter_map(|i| {
                    let v = &states[i];
                    // Attackers do not run the safety layer; stopped
                    // vehicles creep back up and re-check as soon as they
                    // move.
                    if v.speed < 0.5 || v.malicious {
                        return None;
                    }
                    let envelope = v.speed * v.speed / (2.0 * d_max) + 6.0;
                    let cone = 3.0 + v.speed * 1.2; // one-plus time headway
                    let obstructs = |u: &BrakeState| {
                        if u.id == v.id {
                            return false;
                        }
                        // A (near-)stopped obstacle on the own path or the shared
                        // approach of the own lane, within braking range. Plans
                        // are conflict-free, so moving plan-followers never need
                        // this; it fires for crash sites and freshly stopped
                        // attackers the plans have not caught up with.
                        let comparable = u.movement == v.movement
                            || (u.lane == v.lane && u.in_approach && v.in_approach);
                        // A follower whose own plan already stops short of the
                        // obstacle needs no physical intervention.
                        if comparable && u.s > v.s && v.plan_cap > u.s - 2.0 {
                            // Off-plan leaders (evacuating, braking, attacking)
                            // may keep slowing arbitrarily: keep the full
                            // relative stopping distance to them. On-plan leaders
                            // are covered by the scheduler's zone gaps unless
                            // they are (nearly) stopped.
                            if !u.on_plan && u.speed < v.speed {
                                let rel_stop =
                                    (v.speed * v.speed - u.speed * u.speed) / (2.0 * d_max) + 4.0;
                                if u.s - v.s < rel_stop {
                                    return true;
                                }
                            }
                            if u.speed < 3.0 && u.s - v.s < envelope {
                                return true;
                            }
                        }
                        // The world-space rules below exist for uncoordinated
                        // (off-plan) traffic; two plan-followers are deconflicted
                        // by the scheduler, and straight-line extrapolation would
                        // misfire at lane merges.
                        if u.on_plan && v.on_plan {
                            return false;
                        }
                        // Anything directly ahead inside the headway cone — this
                        // is what keeps uncoordinated (self-evacuating) traffic
                        // from driving through each other.
                        let rel = u.pos - v.pos;
                        let ahead = rel.dot(v.heading);
                        if ahead > 0.0 && ahead < cone && rel.cross(v.heading).abs() < 2.2 {
                            return true;
                        }
                        // Anticipated collision course: if straight-line motion
                        // brings the two within 3.5 m in the next 2 s, brake —
                        // but never for traffic *behind* (a leader braking for
                        // its follower freezes the closure speed and guarantees
                        // the rear-end it was trying to avoid).
                        if ahead > 0.0 && rel.norm() < 40.0 {
                            let dv = u.heading * u.speed - v.heading * v.speed;
                            let dv_sq = dv.norm_sq();
                            let t_star = if dv_sq < 1e-9 {
                                0.0
                            } else {
                                (-rel.dot(dv) / dv_sq).clamp(0.0, 2.0)
                            };
                            if (rel + dv * t_star).norm() < 3.5 {
                                return true;
                            }
                        }
                        false
                    };
                    let blocked = match grid {
                        Some(grid) => grid
                            .query(v.pos, brake_radius)
                            .into_iter()
                            .any(|j| obstructs(&states[j])),
                        None => states.iter().any(obstructs),
                    };
                    blocked.then_some(v.id)
                })
                .collect()
        });
        for id in braking {
            if let Some(agent) = self.vehicles.get_mut(&id) {
                agent.emergency_brake(&self.config.limits, self.config.dt);
            }
        }
        // Advance every active vehicle: a pure per-vehicle map returning
        // (id, crossed the path end, new position). Side effects — medium
        // position updates and exit finalization — replay serially in ID
        // order, exactly as the serial engine interleaved them.
        let limits = self.config.limits;
        let dt = self.config.dt;
        let topo = self.topo.clone();
        let mut movers: Vec<&mut VehicleAgent> = self
            .vehicles
            .values_mut()
            .filter(|v| v.is_active())
            .collect();
        let outcomes: Vec<(u64, bool, Option<Vec2>)> =
            fan_out_mut(&mut movers, self.threads, |chunk| {
                chunk
                    .iter_mut()
                    .map(|agent| {
                        if agent.braked_this_tick {
                            agent.braked_this_tick = false;
                            let crossed = agent.s >= topo.movement(agent.movement).path().length();
                            (agent.id.raw(), crossed, None)
                        } else if agent.step(&topo, &limits, dt, now) {
                            (agent.id.raw(), true, None)
                        } else {
                            (agent.id.raw(), false, Some(agent.position(&topo)))
                        }
                    })
                    .collect()
            });
        drop(movers);
        let mut exited: Vec<u64> = Vec::new();
        for (id, crossed, pos) in outcomes {
            if crossed {
                exited.push(id);
            } else if let Some(pos) = pos {
                self.medium.set_position(NodeId::Vehicle(id), pos);
            }
        }
        for id in exited {
            self.finalize_exit(id);
        }
    }

    /// A benign vehicle pushed more than a tolerance off its plan by the
    /// collision-avoidance layer cannot safely rejoin the schedule: it
    /// self-evacuates and announces itself (§IV-B5's "vehicles very close
    /// ... have already detected the malicious vehicle through their own
    /// sensors and started self-evacuation").
    fn divergence_check(&mut self, now: f64) {
        let mut forced: Vec<(u64, Vec<GuardAction>)> = Vec::new();
        for agent in self.vehicles.values_mut() {
            if !agent.is_active() || agent.is_malicious() || agent.mode != DriveMode::FollowPlan {
                continue;
            }
            let Some(plan) = &agent.plan else { continue };
            let err = plan.profile().position_at(now) - agent.s;
            if err > 3.0 {
                agent.self_evacuate();
                let actions = agent.guard.force_self_evacuation(now);
                forced.push((agent.id.raw(), actions));
            }
        }
        for (id, actions) in forced {
            self.handle_guard_actions(VehicleId::new(id), actions, now);
        }
    }

    fn finalize_exit(&mut self, id: u64) {
        let (benign, handoff) = {
            let agent = self.vehicles.get_mut(&id).expect("exiting vehicle exists");
            agent.guard.on_exit();
            let exit_leg = self.topo.movement(agent.movement).to_leg();
            let handoff = self.boundary_exits.contains(&exit_leg).then(|| Handoff {
                id: agent.id,
                // Stalled vehicles still roll onto the connecting road.
                speed: agent.speed.max(1.0),
                descriptor: agent.descriptor.clone(),
                role: agent.role,
                false_reports: 0, // filled in below, outside the borrow
                exit_leg,
            });
            (agent.role == Role::Benign, handoff)
        };
        self.medium.remove_node(NodeId::Vehicle(id));
        // Ledger standing must be read before the release below (which
        // only frees reservations, but keep the order obviously safe).
        let standing = self.imu.manager.false_report_count(VehicleId::new(id));
        self.imu.manager.release_vehicle(VehicleId::new(id));
        // Buffered release record; durable at the next window barrier.
        #[cfg(feature = "store")]
        {
            let failed = self
                .persistence
                .as_mut()
                .is_some_and(|p| p.release(VehicleId::new(id)).is_err());
            if failed {
                self.disable_store("release record");
            }
        }
        // A vehicle handed off while still waiting for its first plan
        // here never closes its latency sample.
        self.handoff_wait.remove(&id);
        match handoff {
            Some(mut h) => {
                h.false_reports = standing;
                self.outbound_handoffs.push(h);
                self.metrics.handoffs_out += 1;
            }
            None => {
                self.metrics.exited += 1;
                if benign {
                    self.metrics.exited_benign += 1;
                }
            }
        }
    }

    fn detect_collisions(&mut self) {
        {
            let scratch = &mut self.scratch;
            scratch.positions.clear();
            scratch.positions.extend(
                self.vehicles
                    .values()
                    .filter(|v| v.is_active())
                    .map(|v| (v.id.raw(), v.position(&self.topo))),
            );
            if self.config.spatial_index {
                scratch.points.clear();
                scratch
                    .points
                    .extend(scratch.positions.iter().map(|(_, p)| *p));
                scratch.pair_grid.rebuild(&scratch.points);
            }
        }
        // Candidate pairs in the nested loop's (i, j) order: the grid
        // query returns ascending indices, so keeping j > i walks exactly
        // the pairs `for i { for j in i+1.. }` would, through the same
        // strict distance predicate.
        let states = &self.scratch.positions;
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        let r_sq = COLLISION_DISTANCE * COLLISION_DISTANCE;
        if self.config.spatial_index {
            let grid = &self.scratch.pair_grid;
            for i in 0..states.len() {
                for j in grid.query(states[i].1, COLLISION_DISTANCE) {
                    if j > i && states[i].1.distance_sq(states[j].1) < r_sq {
                        pairs.push((states[i].0, states[j].0));
                    }
                }
            }
        } else {
            for i in 0..states.len() {
                for j in i + 1..states.len() {
                    if states[i].1.distance_sq(states[j].1) < r_sq {
                        pairs.push((states[i].0, states[j].0));
                    }
                }
            }
        }
        for (a_id, b_id) in pairs {
            let key = (a_id.min(b_id), a_id.max(b_id));
            if self.collided.insert(key) {
                if std::env::var("NWADE_DEBUG").is_ok() {
                    let a = &self.vehicles[&key.0];
                    let b = &self.vehicles[&key.1];
                    eprintln!(
                        "[nwade-debug] t={:.1} collision V{}({:?} v={:.1} s={:.0} mv={}) x V{}({:?} v={:.1} s={:.0} mv={})",
                        self.now, key.0, a.mode, a.speed, a.s, a.movement.index(),
                        key.1, b.mode, b.speed, b.s, b.movement.index()
                    );
                }
                self.metrics.accidents += 1;
            }
        }
    }

    // ----- sensing ----------------------------------------------------

    fn current_observation(&self, target: VehicleId, now: f64) -> Option<Observation> {
        let agent = self.vehicles.get(&target.raw())?;
        if !agent.is_active() {
            return None;
        }
        Some(Observation {
            target,
            position: agent.position(&self.topo),
            speed: agent.speed,
            time: now,
        })
    }

    /// Algorithm 2 for every benign vehicle: observe neighbours in range,
    /// run the guard. The pass snapshots `(id, position, speed)` of every
    /// active vehicle first — the guards only mutate protocol state, so
    /// the snapshot equals the live values the serial loop read — then
    /// fans the guard calls out over the worker pool. Actions replay
    /// serially in ID order.
    fn sense_pass(&mut self, now: f64) {
        if !self.config.nwade_enabled {
            return;
        }
        let radius = self.nwade_cfg().sensing_radius;
        {
            let scratch = &mut self.scratch;
            scratch.sense.clear();
            scratch.sense.extend(
                self.vehicles
                    .values()
                    .filter(|v| v.is_active())
                    .map(|v| (v.id.raw(), v.position(&self.topo), v.speed)),
            );
            if self.config.spatial_index {
                scratch.points.clear();
                scratch
                    .points
                    .extend(scratch.sense.iter().map(|(_, p, _)| *p));
                scratch.sense_grid.rebuild(&scratch.points);
            }
        }
        let snapshot = self.scratch.sense.as_slice();
        let grid = self
            .config
            .spatial_index
            .then_some(&self.scratch.sense_grid);
        let topo = self.topo.clone();
        let mut sensors: Vec<&mut VehicleAgent> = self
            .vehicles
            .values_mut()
            .filter(|v| v.is_active() && v.role == Role::Benign)
            .collect();
        let all_actions: Vec<(u64, Vec<GuardAction>)> =
            fan_out_mut(&mut sensors, self.threads, |chunk| {
                chunk
                    .iter_mut()
                    .filter_map(|agent| {
                        let id = agent.id.raw();
                        let me = agent.position(&topo);
                        let observations: Vec<Observation> =
                            observed_neighbors(snapshot, grid, id, me, radius)
                                .into_iter()
                                .map(|i| {
                                    let (other, position, speed) = snapshot[i];
                                    Observation {
                                        target: VehicleId::new(other),
                                        position,
                                        speed,
                                        time: now,
                                    }
                                })
                                .collect();
                        let mut actions = agent.guard.on_observations(&observations, now);
                        actions.extend(agent.guard.on_tick(now));
                        (!actions.is_empty()).then_some((id, actions))
                    })
                    .collect()
            });
        drop(sensors);
        for (id, actions) in all_actions {
            self.handle_guard_actions(VehicleId::new(id), actions, now);
        }
    }

    // ----- message plane ----------------------------------------------

    fn deliver_messages(&mut self, now: f64) {
        let im_down = self.im_down(now);
        let due = self.medium.deliver_due(now);
        for delivery in due {
            self.invariants.note_delivery(delivery.to, delivery.at, now);
            if im_down && delivery.to == NodeId::Imu {
                // The manager is dark: whatever reaches its antenna dies.
                self.metrics.imu_outage_drops += 1;
                continue;
            }
            let payload = if delivery.corrupted {
                // Corruption-as-flag: the medium marked this copy mangled
                // in transit. Blocks reach the receiver bit-flipped so
                // Algorithm 1's signature check exercises its reject
                // path; everything else fails framing (CRC) and is
                // dropped before the protocol sees it.
                match delivery.payload {
                    NwadeMessage::Block(b) => NwadeMessage::Block(tamper::forge_signature(&b)),
                    NwadeMessage::BlockResponse(mut blocks) => {
                        if let Some(first) = blocks.first_mut() {
                            *first = tamper::forge_signature(first);
                        }
                        NwadeMessage::BlockResponse(blocks)
                    }
                    _ => {
                        self.metrics.corrupted_drops += 1;
                        continue;
                    }
                }
            } else {
                delivery.payload
            };
            match delivery.to {
                NodeId::Imu => self.imu_receive(delivery.from, payload, now),
                NodeId::Vehicle(id) => self.vehicle_receive(id, delivery.from, payload, now),
            }
        }
    }

    fn watchers_near(&self, position: Vec2, exclude: &[VehicleId]) -> Vec<VehicleId> {
        let radius = self.nwade_cfg().sensing_radius;
        let r_sq = radius * radius;
        self.vehicles
            .values()
            .filter(|v| {
                v.is_active()
                    && !exclude.contains(&v.id)
                    && v.position(&self.topo).distance_sq(position) <= r_sq
            })
            .map(|v| v.id)
            .collect()
    }

    fn imu_receive(&mut self, _from: NodeId, message: NwadeMessage, now: f64) {
        match message {
            NwadeMessage::PlanRequest(req) => {
                self.pending_requests.push(now, req);
            }
            NwadeMessage::IncidentReport(report) => {
                // Detection feedback for the adaptive adversary: any
                // report naming it marks the current probe amplitude as
                // too bold. (The attacker eavesdrops on the reporting
                // channel — the strongest-adversary assumption.)
                if let Some(st) = &mut self.adaptive {
                    if report.suspect == st.id {
                        st.reported_this_epoch = true;
                        self.metrics.adaptive_reports += 1;
                    }
                }
                if std::env::var("NWADE_DEBUG").is_ok() {
                    eprintln!(
                        "[nwade-debug] t={now:.2} incident report {} -> {} (announced={})",
                        report.reporter,
                        report.suspect,
                        self.announced_evacuating.contains(&report.suspect)
                    );
                }
                if self.announced_evacuating.contains(&report.suspect) {
                    // Publicly announced self-evacuation, not a new
                    // attack: acknowledge so the reporter does not time
                    // out and escalate.
                    let descriptor = self
                        .vehicles
                        .get(&report.suspect.raw())
                        .map(|v| v.descriptor.clone())
                        .unwrap_or_else(|| nwade_traffic::VehicleDescriptor {
                            brand: String::new(),
                            model: String::new(),
                            color: String::new(),
                        });
                    self.medium.send(
                        NodeId::Imu,
                        Recipient::Unicast(NodeId::Vehicle(report.reporter.raw())),
                        class::EVACUATION_ALERT,
                        NwadeMessage::EvacuationAlert {
                            suspect: report.suspect,
                            descriptor,
                            location: report.evidence.position,
                        },
                        now,
                        &mut self.rng,
                    );
                    return;
                }
                let watchers = self
                    .watchers_near(report.evidence.position, &[report.suspect, report.reporter]);
                let actions =
                    self.imu
                        .on_incident_report(&report, &watchers, &self.colluders.clone(), now);
                self.handle_imu_actions(actions, now);
            }
            NwadeMessage::VerifyResponse {
                request_id,
                suspect,
                observed,
                abnormal,
            } => {
                let near = self
                    .current_observation(suspect, now)
                    .map(|o| o.position)
                    .unwrap_or(Vec2::ZERO);
                let fresh = self.watchers_near(near, &[suspect]);
                let actions = self
                    .imu
                    .on_verify_response(request_id, suspect, observed, abnormal, &fresh, now);
                self.handle_imu_actions(actions, now);
            }
            NwadeMessage::GlobalReport(report) => {
                // The manager hears announcements too: senders of global
                // reports are publicly off-plan.
                self.announced_evacuating.insert(report.sender);
            }
            NwadeMessage::BlockRequest { from_index } => {
                // §IV-B1: vehicles may fetch blocks from the manager.
                let blocks = self.imu.manager.blocks_from(from_index);
                if !blocks.is_empty() {
                    if let NodeId::Vehicle(requester) = _from {
                        self.medium.send(
                            NodeId::Imu,
                            Recipient::Unicast(NodeId::Vehicle(requester)),
                            class::BLOCK_RESPONSE,
                            NwadeMessage::BlockResponse(blocks),
                            now,
                            &mut self.rng,
                        );
                    }
                }
            }
            _ => {}
        }
    }

    fn handle_imu_actions(&mut self, actions: Vec<ImuAction>, now: f64) {
        for action in actions {
            match action {
                ImuAction::Broadcast(block) => {
                    if std::env::var("NWADE_DEBUG").is_ok() {
                        eprintln!(
                            "[nwade-debug] t={now:.2} window block idx={} plans={} ids={:?}",
                            block.index(),
                            block.plans().len(),
                            block
                                .plans()
                                .iter()
                                .map(|p| p.id().raw())
                                .collect::<Vec<_>>()
                        );
                    }
                    self.last_block_index = Some(block.index());
                    self.metrics.blocks_broadcast += 1;
                    self.metrics.block_sizes.push(block.plans().len());
                    self.metrics.plans_scheduled += block.plans().len();
                    if self.metrics.im_recovery_latency.is_none() {
                        if let Some(t) = self.metrics.im_crash_time {
                            self.metrics.im_recovery_latency = Some(now - t);
                        }
                    }
                    // The broadcast marker suppresses re-sending this
                    // block on recovery; it is buffered (not synced) —
                    // losing it only costs a harmless duplicate send.
                    #[cfg(feature = "store")]
                    {
                        let failed = self
                            .persistence
                            .as_mut()
                            .is_some_and(|p| p.broadcasted(block.index()).is_err());
                        if failed {
                            self.disable_store("broadcast marker");
                        }
                    }
                    self.medium.send(
                        NodeId::Imu,
                        Recipient::Broadcast,
                        class::BLOCK,
                        NwadeMessage::Block(block),
                        now,
                        &mut self.rng,
                    );
                }
                ImuAction::Poll {
                    request_id,
                    suspect,
                    group,
                    plan,
                } => {
                    if std::env::var("NWADE_DEBUG").is_ok() {
                        eprintln!(
                            "[nwade-debug] t={now:.2} poll about {suspect}: group={} plan_known={}",
                            group.len(),
                            plan.is_some()
                        );
                    }
                    for watcher in group {
                        let Some(plan) = plan.clone() else {
                            continue;
                        };
                        self.medium.send(
                            NodeId::Imu,
                            Recipient::Unicast(NodeId::Vehicle(watcher.raw())),
                            class::VERIFY_REQUEST,
                            NwadeMessage::VerifyRequest {
                                request_id,
                                suspect,
                                plan,
                            },
                            now,
                            &mut self.rng,
                        );
                    }
                }
                ImuAction::Dismiss { reporter, suspect } => {
                    if Some(suspect) == self.accused {
                        SimMetrics::note_first(&mut self.metrics.false_accusation_dismissed, now);
                    }
                    self.medium.send(
                        NodeId::Imu,
                        Recipient::Unicast(NodeId::Vehicle(reporter.raw())),
                        class::DISMISSAL,
                        NwadeMessage::Dismissal { suspect },
                        now,
                        &mut self.rng,
                    );
                }
                ImuAction::Alert { suspect, location } => {
                    if std::env::var("NWADE_DEBUG").is_ok() {
                        eprintln!("[nwade-debug] t={now:.2} evacuation alert for {suspect} (violator={:?}, accused={:?})", self.violator, self.accused);
                    }
                    if Some(suspect) == self.violator && !self.imu.malicious {
                        SimMetrics::note_first(&mut self.metrics.violation_confirmed, now);
                    }
                    // A staged alert from a compromised manager is the
                    // attack *attempt*; only an honest manager evacuating
                    // against the innocent counts as a triggered false
                    // alarm.
                    if Some(suspect) == self.accused && !self.imu.malicious {
                        SimMetrics::note_first(&mut self.metrics.false_accusation_confirmed, now);
                    }
                    // An alert against the Sybil flood's target means the
                    // phantom reports overwhelmed the ledger.
                    if Some(suspect) == self.sybil_target && !self.imu.malicious {
                        self.metrics.sybil_false_alerts += 1;
                    }
                    let descriptor = self
                        .vehicles
                        .get(&suspect.raw())
                        .map(|v| v.descriptor.clone())
                        .unwrap_or_else(|| nwade_traffic::VehicleDescriptor {
                            brand: String::new(),
                            model: String::new(),
                            color: String::new(),
                        });
                    self.medium.send(
                        NodeId::Imu,
                        Recipient::Broadcast,
                        class::EVACUATION_ALERT,
                        NwadeMessage::EvacuationAlert {
                            suspect,
                            descriptor,
                            location,
                        },
                        now,
                        &mut self.rng,
                    );
                    // An honest manager follows up with evacuation plans
                    // on the chain (a staged alert from a malicious
                    // manager sends none).
                    if !self.imu.malicious {
                        self.issue_evacuation_block(suspect, location, now);
                    }
                }
            }
        }
    }

    fn issue_evacuation_block(&mut self, suspect: VehicleId, location: Vec2, now: f64) {
        // Every active vehicle is replanned — including those whose first
        // plan is still in flight, otherwise their stale plans would
        // conflict with the evacuation plans and fail verification.
        let states: Vec<PlanRequest> = self
            .vehicles
            .values()
            .filter(|v| {
                v.is_active()
                    && v.mode != DriveMode::SelfEvacuate
                    && !self.announced_evacuating.contains(&v.id)
            })
            .map(|v| PlanRequest {
                id: v.id,
                descriptor: v.descriptor.clone(),
                movement: v.movement,
                position_s: v.s,
                speed: v.speed,
            })
            .collect();
        // Threats: the confirmed suspect plus every announced
        // self-evacuating vehicle (they are publicly off-plan).
        let mut threats = vec![self
            .current_observation(suspect, now)
            .map(|o| o.position)
            .unwrap_or(location)];
        for v in &self.announced_evacuating {
            if let Some(obs) = self.current_observation(*v, now) {
                threats.push(obs.position);
            }
        }
        // Evacuation planning is durable like a window: the inputs are
        // logged (and synced) before the plan runs, the commit before
        // the broadcast.
        #[cfg(feature = "store")]
        {
            let failed = self
                .persistence
                .as_mut()
                .is_some_and(|p| p.evac_start(now, &states, &threats).is_err());
            if failed {
                self.disable_store("evacuation start");
            }
        }
        if let Some(block) = self.imu.evacuation_block(&states, &threats, now) {
            if std::env::var("NWADE_DEBUG").is_ok() {
                eprintln!(
                    "[nwade-debug] t={now:.2} evacuation block idx={} plans={}",
                    block.index(),
                    block.plans().len()
                );
            }
            #[cfg(feature = "store")]
            {
                let failed = self.persistence.as_mut().is_some_and(|p| {
                    p.commit_block(&block, true).is_err() || p.broadcasted(block.index()).is_err()
                });
                if failed {
                    self.disable_store("evacuation commit");
                }
            }
            self.metrics.blocks_broadcast += 1;
            self.metrics.block_sizes.push(block.plans().len());
            self.medium.send(
                NodeId::Imu,
                Recipient::Broadcast,
                class::BLOCK,
                NwadeMessage::Block(block),
                now,
                &mut self.rng,
            );
        }
    }

    fn vehicle_receive(&mut self, id: u64, from: NodeId, message: NwadeMessage, now: f64) {
        let Some(agent) = self.vehicles.get_mut(&id) else {
            return;
        };
        if !agent.is_active() {
            return;
        }
        let malicious = agent.is_malicious();
        match message {
            NwadeMessage::Block(block) => {
                if malicious {
                    return;
                }
                let actions = agent.guard.on_block(&block, now);
                self.handle_guard_actions(VehicleId::new(id), actions, now);
            }
            NwadeMessage::Dismissal { suspect } if !malicious => {
                agent.guard.on_dismissal(suspect);
            }
            NwadeMessage::EvacuationAlert { suspect, .. } => {
                if malicious {
                    return;
                }
                agent.guard.note_threat(suspect);
                let obs = self.current_observation(suspect, now).filter(|o| {
                    let agent = &self.vehicles[&id];
                    o.position.distance(agent.position(&self.topo))
                        <= self.nwade_cfg().sensing_radius
                });
                let agent = self.vehicles.get_mut(&id).expect("receiver exists");
                let actions = agent.guard.on_evacuation_alert(suspect, obs.as_ref(), now);
                self.handle_guard_actions(VehicleId::new(id), actions, now);
            }
            NwadeMessage::VerifyRequest {
                request_id,
                suspect,
                plan,
            } => {
                let abnormal: (bool, bool) = if malicious {
                    // Colluders lie (with full "confidence"): shield the
                    // violator, frame the accused.
                    if Some(suspect) == self.violator {
                        (true, false)
                    } else {
                        (true, Some(suspect) == self.accused)
                    }
                } else {
                    let obs = self.current_observation(suspect, now).filter(|o| {
                        let me = self.vehicles[&id].position(&self.topo);
                        o.position.distance(me) <= self.nwade_cfg().sensing_radius
                    });
                    self.vehicles[&id].guard.answer_verify_request(
                        suspect,
                        obs.as_ref(),
                        Some(&plan),
                    )
                };
                self.medium.send(
                    NodeId::Vehicle(id),
                    Recipient::Unicast(NodeId::Imu),
                    class::VERIFY_RESPONSE,
                    NwadeMessage::VerifyResponse {
                        request_id,
                        suspect,
                        observed: abnormal.0,
                        abnormal: abnormal.1,
                    },
                    now,
                    &mut self.rng,
                );
            }
            NwadeMessage::GlobalReport(report) => {
                if malicious {
                    return;
                }
                // The sender announced it no longer follows its plan.
                agent.guard.note_threat(report.sender);
                let me = agent.position(&self.topo);
                let radius = self.nwade_cfg().sensing_radius;
                // §IV-B4 sets the safety threshold from the local
                // majority quorum at medium density; the config default
                // (11) is the paper's worked example.
                let threshold = self.nwade_cfg().global_report_threshold;
                let suspect_pos: std::collections::HashMap<u64, Vec2> = self
                    .vehicles
                    .values()
                    .filter(|v| v.is_active())
                    .map(|v| (v.id.raw(), v.position(&self.topo)))
                    .collect();
                let agent = self.vehicles.get_mut(&id).expect("receiver exists");
                let actions = agent.guard.on_global_report(
                    &report,
                    |s| {
                        suspect_pos
                            .get(&s.raw())
                            .is_some_and(|p| p.distance(me) <= radius)
                    },
                    threshold,
                    now,
                );
                self.handle_guard_actions(VehicleId::new(id), actions, now);
            }
            NwadeMessage::BlockRequest { from_index } => {
                // Serve at most a bounded slice of the cache.
                let blocks: Vec<_> = self.vehicles[&id]
                    .guard
                    .cache()
                    .iter()
                    .filter(|b| b.index() >= from_index)
                    .take(16)
                    .cloned()
                    .collect();
                if !blocks.is_empty() {
                    if let NodeId::Vehicle(requester) = from {
                        self.medium.send(
                            NodeId::Vehicle(id),
                            Recipient::Unicast(NodeId::Vehicle(requester)),
                            class::BLOCK_RESPONSE,
                            NwadeMessage::BlockResponse(blocks),
                            now,
                            &mut self.rng,
                        );
                    }
                }
            }
            NwadeMessage::BlockResponse(blocks) => {
                if malicious {
                    return;
                }
                let agent = self.vehicles.get_mut(&id).expect("receiver exists");
                let actions = agent.guard.on_block_response(&blocks, now);
                self.handle_guard_actions(VehicleId::new(id), actions, now);
            }
            NwadeMessage::PlanAssignment(plan) => {
                agent.follow_plan(plan);
                self.note_boundary_admission(id, now);
            }
            _ => {}
        }
    }

    fn handle_guard_actions(&mut self, id: VehicleId, actions: Vec<GuardAction>, now: f64) {
        // Detect the (SelfEvacuate, Broadcast) pairing to classify the
        // evacuation cause for Table II.
        let evacuation_claim = actions.iter().find_map(|a| match a {
            GuardAction::BroadcastGlobalReport(g) => Some(g.claim),
            _ => None,
        });
        for action in actions {
            match action {
                GuardAction::FollowPlan(plan) => {
                    if let Some(agent) = self.vehicles.get_mut(&id.raw()) {
                        agent.follow_plan(plan);
                        self.note_boundary_admission(id.raw(), now);
                    }
                }
                GuardAction::SendIncidentReport(report) => {
                    if Some(report.suspect) == self.violator {
                        SimMetrics::note_first(&mut self.metrics.violation_first_report, now);
                    }
                    self.medium.send(
                        NodeId::Vehicle(id.raw()),
                        Recipient::Unicast(NodeId::Imu),
                        class::INCIDENT_REPORT,
                        NwadeMessage::IncidentReport(report),
                        now,
                        &mut self.rng,
                    );
                }
                GuardAction::BroadcastGlobalReport(report) => {
                    match report.claim {
                        GlobalClaim::AbnormalVehicle { suspect }
                            if Some(suspect) == self.violator =>
                        {
                            SimMetrics::note_first(&mut self.metrics.violation_global_report, now);
                        }
                        GlobalClaim::WrongfulAccusation { suspect }
                            if Some(suspect) == self.accused =>
                        {
                            SimMetrics::note_first(&mut self.metrics.wrongful_dissent, now);
                        }
                        GlobalClaim::ConflictingPlans { index }
                            if Some(index) == self.corrupted_index =>
                        {
                            SimMetrics::note_first(&mut self.metrics.corrupted_block_detected, now);
                        }
                        _ => {}
                    }
                    self.medium.send(
                        NodeId::Vehicle(id.raw()),
                        Recipient::Broadcast,
                        class::GLOBAL_REPORT,
                        NwadeMessage::GlobalReport(report),
                        now,
                        &mut self.rng,
                    );
                }
                GuardAction::RequestBlocks { from_index } => {
                    // Ask the nearest peer ("the vehicles in front of it",
                    // §IV-B2) rather than flooding the channel.
                    let me = self
                        .vehicles
                        .get(&id.raw())
                        .map(|v| v.position(&self.topo))
                        .unwrap_or(Vec2::ZERO);
                    let nearest = self
                        .vehicles
                        .values()
                        .filter(|v| v.is_active() && v.id != id && !v.is_malicious())
                        .min_by(|a, b| {
                            a.position(&self.topo)
                                .distance_sq(me)
                                .partial_cmp(&b.position(&self.topo).distance_sq(me))
                                .expect("finite distances")
                        })
                        .map(|v| v.id);
                    let target = nearest
                        .map(|p| NodeId::Vehicle(p.raw()))
                        .unwrap_or(NodeId::Imu);
                    self.medium.send(
                        NodeId::Vehicle(id.raw()),
                        Recipient::Unicast(target),
                        class::BLOCK_REQUEST,
                        NwadeMessage::BlockRequest { from_index },
                        now,
                        &mut self.rng,
                    );
                }
                GuardAction::RebutGlobalReport { claim } => {
                    if let GlobalClaim::ConflictingPlans { index } = claim {
                        if Some(index) == self.bogus_claim_index {
                            self.metrics.type_b_rebuttals += 1;
                            SimMetrics::note_first(&mut self.metrics.type_b_first_rebuttal, now);
                        }
                    }
                }
                GuardAction::DisregardAlert { .. } => {
                    // The staged alert is ignored; nothing to execute.
                }
                GuardAction::SelfEvacuate => {
                    if std::env::var("NWADE_DEBUG").is_ok() {
                        eprintln!(
                            "[nwade-debug] t={now:.2} {id} self-evacuates ({evacuation_claim:?})"
                        );
                    }
                    if let Some(agent) = self.vehicles.get_mut(&id.raw()) {
                        if agent.role == Role::Benign {
                            self.metrics.benign_self_evacuations += 1;
                            if agent.guard.evacuation_cause() == Some(EvacuationCause::ImTimeout) {
                                self.metrics.im_timeout_evacuations += 1;
                            }
                            match evacuation_claim {
                                Some(GlobalClaim::AbnormalVehicle { suspect })
                                    if Some(suspect) == self.accused =>
                                {
                                    self.metrics.accused_claim_evacuations += 1;
                                }
                                Some(GlobalClaim::ConflictingPlans { index })
                                    if Some(index) == self.bogus_claim_index =>
                                {
                                    self.metrics.type_b_evacuations += 1;
                                }
                                Some(GlobalClaim::ConflictingPlans { index })
                                    if Some(index) != self.corrupted_index =>
                                {
                                    self.metrics.honest_block_rejections += 1;
                                }
                                _ => {}
                            }
                        }
                        agent.self_evacuate();
                    }
                }
                GuardAction::Readmit => {
                    // The guard verified a fresh post-outage block: the
                    // vehicle rejoins. Clear the evacuation announcement
                    // bookkeeping so the manager stops treating it as
                    // publicly off-plan, and let it request a fresh plan
                    // right away (the pre-outage one is stale).
                    if std::env::var("NWADE_DEBUG").is_ok() {
                        eprintln!("[nwade-debug] t={now:.2} {id} re-admitted after IM outage");
                    }
                    if let Some(agent) = self.vehicles.get_mut(&id.raw()) {
                        agent.readmit(now);
                        if agent.role == Role::Benign {
                            self.metrics.readmitted_after_outage += 1;
                        }
                    }
                    self.announced_evacuating.remove(&id);
                    self.last_announce.remove(&id.raw());
                }
            }
        }
    }

    // ----- manager window ----------------------------------------------

    /// Applies the configured admission policy to the pending queue:
    /// drops stale entries (requester exited or evacuated), admits up to
    /// the policy's cap — deadline = predicted seconds to the box entry
    /// — and predicts each admitted request's position forward to `now`.
    /// With the default unbounded policy this is exactly the historical
    /// take-everything-in-arrival-order path. Deferral counts land in
    /// [`SimMetrics`] so a binding cap is never silent.
    fn admit_pending(&mut self, now: f64) -> Vec<PlanRequest> {
        let vehicles = &self.vehicles;
        self.pending_requests.retain(|e| {
            vehicles
                .get(&e.request.id.raw())
                .is_some_and(VehicleAgent::is_active)
        });
        if self.pending_requests.is_empty() {
            return Vec::new();
        }
        let topo = &self.topo;
        let outcome = self.pending_requests.admit(&self.config.admission, |e| {
            let movement = topo.movement(e.request.movement);
            (movement.box_entry() - e.request.position_s) / e.request.speed.max(0.1)
        });
        self.metrics.admission_offered += outcome.offered;
        self.metrics.admission_admitted += outcome.admitted.len();
        self.metrics.admission_deferred += outcome.deferred;
        self.metrics.last_window_shed_gap = outcome.deferred;
        if outcome.deferred > 0 {
            self.metrics.shed_windows += 1;
        }
        outcome
            .admitted
            .into_iter()
            .map(|e| {
                // Predict how far the requester has cruised since sending.
                let mut req = e.request;
                req.position_s += req.speed * (now - e.arrival);
                req
            })
            .collect()
    }

    /// Runs the window through the pipelined engine: prepare on the tick
    /// thread, sign on the sealing worker, absorb back — drained within
    /// the same call, so the actions are bit-identical to
    /// [`ImuAgent::on_window`] (pinned by the differential suite). The
    /// worker signs against a private tip copy, so the pipeline is
    /// rebuilt whenever the manager's tip moved without it (restart,
    /// warm recovery, evacuation block).
    fn pipelined_window_actions(&mut self, requests: &[PlanRequest], now: f64) -> Vec<ImuAction> {
        let tip = (
            self.imu.manager.chain_tip(),
            self.imu.manager.chain_next_index(),
        );
        if self.window_pipeline.is_none() || self.pipeline_tip != Some(tip) {
            self.window_pipeline = Some(WindowPipeline::for_manager(&self.imu.manager));
        }
        let mut pipeline = self.window_pipeline.take().expect("pipeline just ensured");
        let actions = self.imu.on_window_pipelined(requests, now, &mut pipeline);
        self.pipeline_tip = Some((
            self.imu.manager.chain_tip(),
            self.imu.manager.chain_next_index(),
        ));
        self.window_pipeline = Some(pipeline);
        actions
    }

    fn process_window(&mut self, now: f64) {
        let requests = self.admit_pending(now);
        if requests.is_empty() {
            return;
        }
        if self.config.nwade_enabled {
            // The window's requests become durable before scheduling: a
            // crash from here on replays them deterministically.
            #[cfg(feature = "store")]
            {
                let failed = self
                    .persistence
                    .as_mut()
                    .is_some_and(|p| p.window_start(now, &requests).is_err());
                if failed {
                    self.disable_store("window start");
                }
            }
            // Track the corrupted block's index for metric attribution.
            let will_corrupt =
                self.imu.malicious && self.imu.corrupt_next_block && !self.imu.corruption_emitted;
            let actions = if self.config.pipelined_windows {
                self.pipelined_window_actions(&requests, now)
            } else {
                self.imu.on_window(&requests, now)
            };
            if will_corrupt && self.imu.corruption_emitted {
                if let Some(ImuAction::Broadcast(b)) = actions.first() {
                    self.corrupted_index = Some(b.index());
                }
            }
            #[cfg(feature = "store")]
            if let Some(plan) = self.due_crash(now) {
                // The process dies mid-window: the staged actions are
                // discarded, nothing is broadcast by the dying manager.
                let staged = actions.into_iter().find_map(|a| match a {
                    ImuAction::Broadcast(b) => Some(b),
                    _ => None,
                });
                self.crash_im(plan, staged, now);
                return;
            }
            // WAL rule: the commit record is durable before publication.
            #[cfg(feature = "store")]
            {
                let mut failed = false;
                for action in &actions {
                    if let ImuAction::Broadcast(block) = action {
                        failed |= self
                            .persistence
                            .as_mut()
                            .is_some_and(|p| p.commit_block(block, true).is_err());
                    }
                }
                if failed {
                    self.disable_store("block commit");
                }
            }
            self.handle_imu_actions(actions, now);
            #[cfg(feature = "store")]
            {
                let failed = matches!(
                    self.persistence
                        .as_mut()
                        .map(|p| p.window_end(&self.imu.manager)),
                    Some(Err(_))
                );
                if failed {
                    self.disable_store("snapshot");
                }
            }
        } else {
            // Baseline without NWADE: plans are unicast, no blockchain.
            let actions = self.imu.on_window(&requests, now);
            for action in actions {
                if let ImuAction::Broadcast(block) = action {
                    self.metrics.plans_scheduled += block.plans().len();
                    for plan in block.plans() {
                        self.medium.send(
                            NodeId::Imu,
                            Recipient::Unicast(NodeId::Vehicle(plan.id().raw())),
                            "plan-assignment",
                            NwadeMessage::PlanAssignment(plan.clone()),
                            now,
                            &mut self.rng,
                        );
                    }
                }
            }
        }
    }

    fn check_threat_cleared(&mut self) {
        if self.threat_cleared {
            return;
        }
        let Some(violator) = self.violator else {
            return;
        };
        if self.metrics.violation_confirmed.is_none() {
            return;
        }
        let gone = self
            .vehicles
            .get(&violator.raw())
            .is_none_or(|v| !v.is_active() || v.speed < 0.1);
        if gone {
            self.threat_cleared = true;
            self.imu.manager.on_threat_cleared();
            self.imu.manager.on_recovery_complete();
            // Post-evacuation recovery (§IV-B5): vehicles parked by
            // evacuation plans are rescheduled at normal speed in the
            // following windows.
            let now = self.now;
            let mut requests = Vec::new();
            for v in self.vehicles.values() {
                let needs_replan = v.is_active()
                    && Some(v.id) != self.violator
                    && v.mode == DriveMode::FollowPlan
                    && v.plan
                        .as_ref()
                        .is_some_and(|p| p.exit_time(&self.topo).is_none());
                if needs_replan {
                    requests.push(PlanRequest {
                        id: v.id,
                        descriptor: v.descriptor.clone(),
                        movement: v.movement,
                        position_s: v.s,
                        speed: v.speed,
                    });
                }
            }
            for req in requests {
                self.pending_requests.push(now, req);
            }
        }
    }
}

/// One measured processing window from
/// [`Simulation::bench_window_throughput`].
#[derive(Debug, Clone)]
pub struct WindowBenchPoint {
    /// Requests waiting when the window opened (admitted + deferred).
    pub offered: usize,
    /// Requests the admission policy let into the batch.
    pub admitted: usize,
    /// Requests the admission cap deferred to a later window.
    pub deferred: usize,
    /// Wall-clock seconds the tick thread spent on the window —
    /// admission + scheduling + conflict filter + Merkle root, plus
    /// signing in sequential mode (in pipelined mode the signing
    /// overlaps the next window on the sealing worker).
    pub latency_s: f64,
}
