//! Acceptance tests for the adaptive adversary policies: each policy
//! must land exactly where the NWADE defence model (Eq. 2 and the
//! false-reporter ledger, §IV-B2) says it should.

use nwade::prob;
use nwade_sim::{
    AdaptivePlan, AttackPolicy, CliquePlan, SimConfig, SimReport, Simulation, SybilPlan,
};

fn run(policy: AttackPolicy, duration: f64, seed: u64) -> SimReport {
    let mut config = SimConfig::default();
    config.duration = duration;
    config.density = 60.0;
    config.seed = seed;
    config.adversary = Some(policy);
    config.validate().expect("scenario valid");
    Simulation::new(config).run()
}

/// An attacker probing strictly below the watchers' position tolerance
/// is invisible to the naive deviation check: Algorithm 2 only reports
/// deviations beyond `position_tolerance` (5 m by default), so a 3 m
/// pulse never generates a report, never reaches verification, and the
/// run ends with no confirmed violation.
#[test]
fn under_threshold_adaptive_attacker_stays_undetected() {
    let report = run(
        AttackPolicy::Adaptive(AdaptivePlan {
            start: 30.0,
            probe_period: 4.0,
            max_amplitude: 3.0,
        }),
        110.0,
        9001,
    );
    let m = &report.metrics;
    assert!(m.adaptive_epochs > 5, "probe campaign ran: {m:?}");
    assert_eq!(
        m.adaptive_reports, 0,
        "sub-tolerance pulses must never be reported"
    );
    assert!(
        m.violation_confirmed.is_none(),
        "nothing to confirm below the tolerance"
    );
    let amp = m.adaptive_amplitude.expect("amplitude tracked");
    assert!(
        amp > 0.0 && amp <= 3.0,
        "bisection stays inside its bound, got {amp}"
    );
}

/// Above the tolerance the same attacker is certain to be flagged:
/// with zero compromised watchers Eq. 2 gives `P_d = e^0 = 1`, so the
/// first over-threshold epoch that a watcher observes produces a
/// report, and the bisection walks the amplitude back down below the
/// starting bound.
#[test]
fn above_threshold_adaptive_attacker_is_reported_as_eq2_predicts() {
    // Honest fleet: every watcher reports what it sees, p_v = 0.
    assert_eq!(prob::detection_probability(1, 0.0, 12.0), 1.0);

    let report = run(
        AttackPolicy::Adaptive(AdaptivePlan {
            start: 30.0,
            probe_period: 4.0,
            max_amplitude: 12.0,
        }),
        120.0,
        4242,
    );
    let m = &report.metrics;
    assert!(m.adaptive_epochs > 5, "probe campaign ran: {m:?}");
    assert!(
        m.adaptive_reports > 0,
        "over-threshold pulses must be reported (Eq. 2 with p_v = 0)"
    );
    let amp = m.adaptive_amplitude.expect("amplitude tracked");
    assert!(
        amp < 12.0,
        "reports must have pushed the bracket down from the bound, got {amp}"
    );
}

/// The collusion-fraction cliff: verification polls a 5-watcher group
/// and acts on its majority, so a clique below the majority line is
/// outvoted by honest watchers (the innocent is dismissed), while a
/// clique holding the majority captures both disjoint rounds and gets
/// the innocent convicted. Eq. 2's `p_v` term predicts the same
/// collapse for detecting real violators as the fraction grows.
#[test]
fn clique_below_and_above_the_majority_fraction_behave_per_model() {
    let small = run(
        AttackPolicy::Clique(CliquePlan {
            start: 40.0,
            fraction: 0.15,
        }),
        100.0,
        7,
    );
    let large = run(
        AttackPolicy::Clique(CliquePlan {
            start: 40.0,
            fraction: 0.6,
        }),
        100.0,
        7,
    );
    assert!(small.metrics.clique_size > 0, "clique recruited");
    assert!(
        large.metrics.clique_size > small.metrics.clique_size,
        "fraction controls clique size: {} vs {}",
        large.metrics.clique_size,
        small.metrics.clique_size
    );
    // 15% colluders: honest watchers hold the majority in the polled
    // groups, the accusation dies in verification.
    assert!(
        small.metrics.false_accusation_confirmed.is_none(),
        "small clique must be outvoted"
    );
    assert!(
        small.metrics.false_accusation_dismissed.is_some(),
        "small clique's accusation must be processed and dismissed"
    );
    // 60% colluders: the clique owns the majority of both disjoint
    // rounds — the watch itself is subverted and the innocent is
    // convicted, exactly the regime where Eq. 2 says detection fails.
    assert!(
        large.metrics.false_accusation_confirmed.is_some(),
        "majority clique must capture the verification quorum"
    );
    let p_small = prob::detection_probability(5, 0.15, 12.0);
    let p_large = prob::detection_probability(5, 0.6, 12.0);
    assert!(
        p_large < p_small,
        "Eq. 2 must degrade with the collusion fraction: {p_large} vs {p_small}"
    );
}

/// Phantom Sybil reporters burn through their verification rounds and
/// hit the false-reporter ledger (§IV-B2 iii: three false alarms and
/// the reporter is ignored). The flood keeps transmitting but never
/// produces an evacuation alert against its innocent target.
#[test]
fn sybil_flood_is_squelched_by_the_false_reporter_ledger() {
    let plan = SybilPlan {
        start: 30.0,
        count: 4,
        report_interval: 2.0,
    };
    let report = run(AttackPolicy::Sybil(plan), 100.0, 1337);
    let m = &report.metrics;
    assert!(
        m.sybil_reports >= plan.count * 3,
        "phantoms keep firing past the ledger threshold: {}",
        m.sybil_reports
    );
    assert_eq!(
        m.sybil_false_alerts, 0,
        "the ledger plus honest verification must squelch the flood"
    );
    assert!(
        m.violation_confirmed.is_none(),
        "no real violation exists in this scenario"
    );
}
