//! Property tests for boundary handoffs.
//!
//! Whatever the grid topology, link latencies, and traffic routes, a
//! boundary crossing never loses, duplicates, or teleports a vehicle:
//! every vehicle the city has ever spawned is exactly one of exited,
//! active in some shard, riding a link, or queued for re-admission —
//! and the handoff books themselves balance. A handed-off false
//! reporter's ledger standing follows it into the receiving manager.

use nwade_intersection::LegId;
use nwade_sim::vehicle::Role;
use nwade_sim::{CityConfig, CityGrid, Handoff, SimConfig, Simulation};
use nwade_traffic::{VehicleDescriptor, VehicleId};
use proptest::prelude::*;

fn base_config(seed: u64) -> SimConfig {
    let mut base = SimConfig::default();
    base.duration = 40.0;
    base.density = 80.0;
    base.seed = seed;
    base
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random grids: a ring for guaranteed flow plus arbitrary extra
    /// chords, random latencies, random seeds. Conservation must hold
    /// at every sampled tick and at the end.
    #[test]
    fn random_grids_conserve_vehicles(
        shards in 1usize..=4,
        seed in 0u64..1000,
        chords in proptest::collection::vec(
            // (from, to-offset, from_leg, to_leg, latency)
            (0usize..4, 1usize..4, 0u8..3, 0u8..3, 0.0..12.0f64),
            0..4,
        ),
        ring_latency in 0.0..12.0f64,
    ) {
        let mut cfg = CityConfig::ring(shards, base_config(seed));
        for link in &mut cfg.links {
            link.latency = ring_latency;
        }
        for (from, offset, from_leg, to_leg, latency) in chords {
            let from = from % shards;
            let to = (from + offset) % shards;
            if from == to {
                continue;
            }
            cfg.links.push(nwade_sim::LinkSpec {
                from,
                from_leg,
                to,
                to_leg,
                latency,
            });
        }
        cfg.validate().expect("generated grid is valid");
        let mut city = CityGrid::new(cfg);
        for tick in 0..500 {
            city.tick();
            if tick % 20 == 19 {
                city.check_conservation()
                    .map_err(|e| TestCaseError::Fail(format!("tick {tick}: {e}")))?;
            }
        }
        city.check_conservation()
            .map_err(|e| TestCaseError::Fail(format!("final: {e}")))?;
        prop_assert_eq!(city.anchor_mismatches(), 0);
    }
}

/// A handed-off false reporter arrives with its tally: the receiving
/// manager starts it at the departing manager's count, so three strikes
/// anywhere in the city still squelch it here.
#[test]
fn ledger_standing_follows_handoff() {
    let mut cfg = SimConfig::default();
    cfg.duration = 60.0;
    cfg.density = 0.001; // keep the shard empty so admission is instant
    cfg.seed = 3;
    let mut sim = Simulation::new(cfg);
    let offender = VehicleId::new(424242);
    sim.queue_inbound_handoff(
        LegId::new(1),
        Handoff {
            id: offender,
            speed: 12.0,
            descriptor: VehicleDescriptor {
                brand: "test".into(),
                model: "handoff".into(),
                color: "red".into(),
            },
            role: Role::FalseReporter,
            false_reports: 3,
            exit_leg: LegId::new(0),
        },
    );
    let mut admitted = false;
    for _ in 0..50 {
        sim.tick_once();
        if sim.metrics_so_far().handoffs_in == 1 {
            admitted = true;
            break;
        }
    }
    assert!(admitted, "empty lane admits the handoff promptly");
    assert_eq!(
        sim.false_report_count(offender),
        3,
        "ledger standing crossed the boundary with the vehicle"
    );
    assert_eq!(
        sim.false_report_count(VehicleId::new(1)),
        0,
        "other vehicles are unaffected"
    );
}
