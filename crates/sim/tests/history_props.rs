//! Property test for the forensics contract: for *any* scenario — random
//! demand, engine, attack, adversary policy, manager outage, and
//! crash-point injection — recording a run through [`WorldHistory`] and
//! resimulating from any retained snapshot reproduces the original
//! tick-stream hashes bit-identically.
//!
//! This is the generative companion of the hand-picked differential
//! scenarios in `tests/integration_replay_forensics.rs` at the workspace
//! root: proptest explores fault-model corners (crash inside an outage,
//! adversary plus violator, Sybil flood during recovery…) that no fixed
//! scenario list would cover.

use nwade::attack::{AttackSetting, ViolationKind};
use nwade::CrashPoint;
use nwade_sim::{
    AdaptivePlan, AttackPlan, AttackPolicy, CliquePlan, CrashPlan, EngineChoice, ImOutage,
    SimConfig, Simulation, SybilPlan, WorldHistory,
};
use proptest::prelude::*;

/// An adversary choice with its start expressed as a fraction of the
/// run, resolved against the drawn duration when the config is built.
#[derive(Debug, Clone, Copy)]
enum AdversaryDraw {
    Adaptive {
        frac: f64,
        probe: f64,
        amp: f64,
    },
    Clique {
        frac: f64,
        fraction: f64,
    },
    Sybil {
        frac: f64,
        count: usize,
        interval: f64,
    },
}

fn engine_strategy() -> impl Strategy<Value = EngineChoice> {
    prop_oneof![
        Just(EngineChoice::Serial),
        Just(EngineChoice::Parallel),
        Just(EngineChoice::Auto),
    ]
}

/// `Some((setting, violation, start fraction))` half the time.
fn attack_strategy() -> impl Strategy<Value = Option<(AttackSetting, ViolationKind, f64)>> {
    let setting = prop_oneof![
        Just(AttackSetting::V1),
        Just(AttackSetting::V2),
        Just(AttackSetting::V3),
        Just(AttackSetting::Im),
    ];
    let violation = prop_oneof![
        Just(ViolationKind::SuddenStop),
        Just(ViolationKind::SpeedUp),
        Just(ViolationKind::LaneDeviation),
    ];
    prop_oneof![
        Just(None::<(AttackSetting, ViolationKind, f64)>),
        (setting, violation, 0.3..0.6f64).prop_map(Some),
    ]
}

fn adversary_strategy() -> impl Strategy<Value = Option<AdversaryDraw>> {
    prop_oneof![
        Just(None::<AdversaryDraw>),
        (0.25..0.55f64, 2.0..5.0f64, 4.0..10.0f64)
            .prop_map(|(frac, probe, amp)| Some(AdversaryDraw::Adaptive { frac, probe, amp })),
        (0.25..0.55f64, 0.1..0.5f64)
            .prop_map(|(frac, fraction)| Some(AdversaryDraw::Clique { frac, fraction })),
        (0.25..0.55f64, 1usize..4, 1.0..4.0f64).prop_map(|(frac, count, interval)| {
            Some(AdversaryDraw::Sybil {
                frac,
                count,
                interval,
            })
        }),
    ]
}

/// `Some((start fraction, outage length))` half the time.
fn outage_strategy() -> impl Strategy<Value = Option<(f64, f64)>> {
    prop_oneof![
        Just(None::<(f64, f64)>),
        (0.3..0.6f64, 4.0..12.0f64).prop_map(Some),
    ]
}

/// `Some((crash-time fraction, crash point, cold downtime))` half the time.
fn crash_strategy() -> impl Strategy<Value = Option<(f64, CrashPoint, f64)>> {
    let point = prop_oneof![
        Just(CrashPoint::AfterStage),
        Just(CrashPoint::BeforeCommit),
        Just(CrashPoint::AfterCommit),
    ];
    prop_oneof![
        Just(None::<(f64, CrashPoint, f64)>),
        (0.3..0.6f64, point, 2.0..8.0f64).prop_map(Some),
    ]
}

#[allow(clippy::type_complexity)]
fn build_config(
    base: (f64, f64, u64, EngineChoice),
    attack: Option<(AttackSetting, ViolationKind, f64)>,
    adversary: Option<AdversaryDraw>,
    outage: Option<(f64, f64)>,
    crash: Option<(f64, CrashPoint, f64)>,
) -> SimConfig {
    let (duration, density, seed, engine) = base;
    let mut config = SimConfig::default();
    config.duration = duration;
    config.density = density;
    config.seed = seed;
    config.engine = engine;
    config.attack = attack.map(|(setting, violation, frac)| AttackPlan {
        setting,
        violation,
        start: duration * frac,
    });
    config.adversary = adversary.map(|draw| match draw {
        AdversaryDraw::Adaptive { frac, probe, amp } => AttackPolicy::Adaptive(AdaptivePlan {
            start: duration * frac,
            probe_period: probe,
            max_amplitude: amp,
        }),
        AdversaryDraw::Clique { frac, fraction } => AttackPolicy::Clique(CliquePlan {
            start: duration * frac,
            fraction,
        }),
        AdversaryDraw::Sybil {
            frac,
            count,
            interval,
        } => AttackPolicy::Sybil(SybilPlan {
            start: duration * frac,
            count,
            report_interval: interval,
        }),
    });
    config.im_outage = outage.map(|(frac, len)| ImOutage {
        start: duration * frac,
        duration: len,
    });
    config.im_crash = crash.map(|(frac, point, down)| CrashPlan {
        at: duration * frac,
        point,
        cold_downtime: down,
    });
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the scenario throws at the world — attacks, adaptive
    /// adversaries, outages, mid-window crashes — every retained rewind
    /// point replays to the end of the recording with every tick's hash
    /// matching the original, and the final states are bit-identical.
    #[test]
    fn any_rewind_point_replays_bit_identically(
        base in (18.0..32.0f64, 15.0..45.0f64, any::<u64>(), engine_strategy()),
        attack in attack_strategy(),
        adversary in adversary_strategy(),
        faults in (outage_strategy(), crash_strategy()),
        knobs in (5u64..40, 2usize..6, 0.0..1.0f64),
    ) {
        let (cadence, capacity, rewind_fraction) = knobs;
        let config = build_config(base, attack, adversary, faults.0, faults.1);
        config.validate().expect("generated scenario is valid");
        let ticks = (config.duration / config.dt).round() as u64;

        let mut sim = Simulation::new(config);
        let mut history = WorldHistory::new(cadence, capacity);
        for _ in 0..ticks {
            sim.tick_once();
            history.observe(&sim);
        }
        let last = history.last_tick().expect("run recorded");
        prop_assert_eq!(last, ticks);
        let final_hash = history.hash_at(last).expect("final hash");
        prop_assert_eq!(final_hash, sim.state_hash());

        let snapshots = history.snapshot_ticks();
        prop_assert!(!snapshots.is_empty());

        // Replay from the earliest retained snapshot and from one picked
        // by the generated fraction — both must reproduce the recorded
        // hash stream and land on the identical final state.
        let pick = snapshots[((snapshots.len() - 1) as f64 * rewind_fraction) as usize];
        let mut starts = vec![snapshots[0], pick];
        starts.dedup();
        for start in starts {
            let report = history
                .resimulate(start..last + 1, |_| {})
                .map_err(|e| TestCaseError::Fail(format!("replay from {start}: {e}")))?;
            prop_assert_eq!(report.started_from, start);
            prop_assert_eq!(report.hashes_compared as u64, report.ticks_replayed);
            prop_assert_eq!(report.world.state_hash(), final_hash);
        }

        // Incident pins must rewind to a retained snapshot at or before
        // the incident.
        for incident in history.incidents() {
            prop_assert!(incident.rewind_tick <= incident.tick);
            prop_assert!(history.rewind(incident.rewind_tick).is_some());
        }
    }
}
