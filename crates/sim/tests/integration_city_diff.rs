//! Differential suite for the sharded city grid.
//!
//! Two guarantees are pinned here. First, a 1-shard city is the
//! degenerate case: no links, no boundary legs, no handoffs — its
//! single shard must stay **bit-identical** (state hash at every tick)
//! to a plain [`Simulation`] built from the same config, across plain,
//! attack, and chaos scenarios. Second, the city's two-phase tick
//! (parallel shard fan-out + serialized shard-ID-ordered commit) makes
//! worker-thread count unobservable: an N-shard city produces the same
//! per-tick hash trace at 1, 2, and the host's maximum threads.

use nwade::attack::{AttackSetting, ViolationKind};
use nwade_sim::engine::host_threads;
use nwade_sim::{AttackPlan, CityConfig, CityGrid, ImOutage, SimConfig, Simulation};

/// Runs a 1-shard city and a plain simulation of the identical config
/// in lockstep, asserting equal state hashes at every tick.
fn assert_city_matches_plain(base: SimConfig, label: &str) {
    let ticks = (base.duration / base.dt).ceil() as u64;
    let city_cfg = CityConfig::ring(1, base);
    let plain_cfg = city_cfg.shard_config(0);
    let mut city = CityGrid::new(city_cfg);
    let mut plain = Simulation::new(plain_cfg);
    for t in 0..ticks {
        city.tick();
        plain.tick_once();
        assert_eq!(
            city.shards()[0].state_hash(),
            plain.state_hash(),
            "{label}: 1-shard city diverged from the plain simulator at tick {t}"
        );
    }
    assert_eq!(city.anchor_mismatches(), 0);
}

#[test]
fn one_shard_city_matches_plain_run() {
    let mut config = SimConfig::default();
    config.duration = 120.0;
    config.density = 80.0;
    config.seed = 2025;
    assert_city_matches_plain(config, "plain");
}

#[test]
fn one_shard_city_matches_attack_run() {
    let mut config = SimConfig::default();
    config.duration = 150.0;
    config.density = 80.0;
    config.seed = 71;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::V2,
        violation: ViolationKind::LaneDeviation,
        start: 60.0,
    });
    assert_city_matches_plain(config, "attack-v2");
}

#[test]
fn one_shard_city_matches_chaos_run() {
    let mut config = SimConfig::default();
    config.duration = 150.0;
    config.density = 80.0;
    config.seed = 43;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::V1,
        violation: ViolationKind::SuddenStop,
        start: 60.0,
    });
    config.im_outage = Some(ImOutage {
        start: 45.0,
        duration: 6.0,
    });
    assert_city_matches_plain(config, "chaos-outage");
}

#[test]
fn multi_shard_city_is_thread_count_invariant() {
    let mut base = SimConfig::default();
    base.duration = 60.0;
    base.density = 60.0;
    base.seed = 7;
    let thread_counts = [1usize, 2, host_threads().max(2)];
    let mut traces: Vec<Vec<u64>> = Vec::new();
    for threads in thread_counts {
        let mut cfg = CityConfig::ring(4, base.clone());
        cfg.threads = threads;
        let mut city = CityGrid::new(cfg);
        let mut trace = Vec::with_capacity(600);
        for _ in 0..600 {
            city.tick();
            trace.push(city.state_hash());
        }
        city.check_conservation().expect("vehicles conserved");
        traces.push(trace);
    }
    assert_eq!(
        traces[0], traces[1],
        "city diverged between 1 and 2 worker threads"
    );
    assert_eq!(
        traces[0], traces[2],
        "city diverged between 1 and max worker threads"
    );
}
