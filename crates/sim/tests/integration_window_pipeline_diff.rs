//! Differential suite for the pipelined window engine.
//!
//! `SimConfig::pipelined_windows` routes window processing through
//! `WindowPipeline` (prepare on the caller, seal on a worker thread)
//! instead of the sequential `ImuAgent::on_window`. The pipeline is a
//! pure execution change: every scenario here must produce a
//! bit-identical world — same state hash at every tick, which covers
//! vehicle kinematics, the chain tip, in-flight messages, and the
//! metric counters — whether the flag is on or off. Scenarios span a
//! plain run, a staged attack with corrupted blocks, manager-outage
//! chaos, and a binding admission cap with deferrals.

use nwade::attack::{AttackSetting, ViolationKind};
use nwade_aim::AdmissionPolicy;
use nwade_sim::{AttackPlan, ImOutage, SimConfig, Simulation};

/// Runs the scenario twice — sequential and pipelined — in lockstep
/// and asserts the state hashes match at every tick.
fn assert_lockstep(config: SimConfig, label: &str) {
    config.validate().expect("scenario config valid");
    let ticks = (config.duration / config.dt).ceil() as u64;
    let mut seq_cfg = config.clone();
    seq_cfg.pipelined_windows = false;
    let mut pipe_cfg = config;
    pipe_cfg.pipelined_windows = true;
    let mut seq = Simulation::new(seq_cfg);
    let mut pipe = Simulation::new(pipe_cfg);
    for t in 0..ticks {
        seq.tick_once();
        pipe.tick_once();
        assert_eq!(
            seq.state_hash(),
            pipe.state_hash(),
            "{label}: pipelined run diverged from sequential at tick {t}"
        );
    }
}

#[test]
fn plain_run_is_bit_identical() {
    let mut config = SimConfig::default();
    config.duration = 120.0;
    config.density = 80.0;
    config.seed = 2024;
    assert_lockstep(config, "plain");
}

#[test]
fn attack_run_is_bit_identical() {
    // V2 lane deviation: neighbour reports, dissent votes, and the
    // evacuation block all flow through the window path.
    let mut config = SimConfig::default();
    config.duration = 150.0;
    config.density = 80.0;
    config.seed = 77;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::V2,
        violation: ViolationKind::LaneDeviation,
        start: 60.0,
    });
    assert_lockstep(config, "attack-v2");
}

#[test]
fn corrupted_im_run_is_bit_identical() {
    // Malicious manager: the corruption hook rewrites the block after
    // sealing, so the tamper point sits downstream of the pipeline and
    // the manager's own tip must stay honest on both paths.
    let mut config = SimConfig::default();
    config.duration = 150.0;
    config.density = 80.0;
    config.seed = 13;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::Im,
        violation: ViolationKind::SuddenStop,
        start: 60.0,
    });
    assert_lockstep(config, "attack-im");
}

#[test]
fn chaos_outage_run_is_bit_identical() {
    // The manager restart moves the chain tip underneath the pipeline
    // worker; the host must detect the stale tip and rebuild rather
    // than seal on the pre-outage chain.
    let mut config = SimConfig::default();
    config.duration = 150.0;
    config.density = 80.0;
    config.seed = 41;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::V1,
        violation: ViolationKind::SuddenStop,
        start: 60.0,
    });
    config.im_outage = Some(ImOutage {
        start: 45.0,
        duration: 6.0,
    });
    assert_lockstep(config, "chaos-outage");
}

#[test]
fn bounded_admission_run_is_bit_identical() {
    // A binding cap exercises the deferral path: carried-over requests
    // age across windows and must drain identically on both engines.
    let mut config = SimConfig::default();
    config.duration = 120.0;
    config.density = 120.0;
    config.seed = 9;
    config.admission = AdmissionPolicy::bounded(8);
    assert_lockstep(config, "bounded-admission");
}
