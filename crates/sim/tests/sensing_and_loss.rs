//! Robustness integration tests: reduced sensing range and lossy radio.

use nwade::attack::{AttackSetting, ViolationKind};
use nwade_geometry::feet_to_meters;
use nwade_sim::{AttackPlan, SimConfig, Simulation};

fn attacked(seed: u64) -> SimConfig {
    let mut config = SimConfig::default();
    config.duration = 150.0;
    config.seed = seed;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::V1,
        violation: ViolationKind::SuddenStop,
        start: 60.0,
    });
    config
}

#[test]
fn detection_survives_minimum_sensing_range() {
    // §VI-A sweeps sensing down to 300 ft; detection must still work.
    let mut config = attacked(41);
    config.nwade.sensing_radius = feet_to_meters(300.0);
    let r = Simulation::new(config).run();
    assert!(r.violation_detected(), "300 ft sensing still detects");
}

#[test]
fn detection_survives_packet_loss() {
    // A mildly lossy channel: the chain's gap recovery and re-requests
    // must keep the system working. The scenario is stochastic — at 5%
    // loss a minority of seeds gridlock before the attack even deploys
    // (in both directions of history), so the pinned seed must be one
    // where traffic survives to the attack.
    let mut config = attacked(44);
    config.medium.loss_probability = 0.05;
    let r = Simulation::new(config).run();
    assert!(r.violation_detected(), "5% loss still detects");
    assert!(
        r.metrics.network.total_dropped() > 0,
        "loss model was active"
    );
}

#[test]
fn clean_run_survives_packet_loss() {
    let mut config = SimConfig::default();
    config.duration = 120.0;
    config.seed = 43;
    config.medium.loss_probability = 0.05;
    let r = Simulation::new(config).run();
    assert_eq!(r.metrics.accidents, 0);
    assert!(r.metrics.exited > 20, "traffic still flows under loss");
}
