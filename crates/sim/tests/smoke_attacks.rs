//! End-to-end smoke tests: one round per representative attack setting.

use nwade::attack::{AttackSetting, ViolationKind};
use nwade_sim::{AttackPlan, SimConfig, Simulation};

fn run(setting: AttackSetting, violation: ViolationKind, seed: u64) -> nwade_sim::SimReport {
    let mut config = SimConfig::default();
    config.duration = 150.0;
    config.density = 80.0;
    config.seed = seed;
    config.attack = Some(AttackPlan {
        setting,
        violation,
        start: 60.0,
    });
    Simulation::new(config).run()
}

#[test]
fn v1_sudden_stop_detected() {
    let r = run(AttackSetting::V1, ViolationKind::SuddenStop, 1);
    eprintln!(
        "V1: first_report={:?} confirmed={:?} global={:?} start={:?} self_evac={} accidents={}",
        r.metrics.violation_first_report,
        r.metrics.violation_confirmed,
        r.metrics.violation_global_report,
        r.metrics.attack_start,
        r.metrics.benign_self_evacuations,
        r.metrics.accidents
    );
    assert!(r.metrics.attack_start.is_some(), "attack deployed");
    assert!(r.violation_detected(), "V1 must be detected");
}

#[test]
fn v3_with_false_reports() {
    let r = run(AttackSetting::V3, ViolationKind::LaneDeviation, 2);
    eprintln!(
        "V3: detected={} latency={:?} A_trig={} A_det={} B_trig={} B_det={}",
        r.violation_detected(),
        r.detection_latency(),
        r.false_alarm_a_triggered(),
        r.false_alarm_a_detected(),
        r.false_alarm_b_triggered(),
        r.false_alarm_b_detected()
    );
    assert!(r.violation_detected());
    assert!(r.false_alarm_b_detected(), "type B rebutted");
    assert!(!r.false_alarm_b_triggered(), "type B never triggers");
}

#[test]
fn im_corrupted_block_detected() {
    let r = run(AttackSetting::Im, ViolationKind::SuddenStop, 3);
    eprintln!(
        "IM: corrupted_detected={:?} self_evac={} spawned={} exited={}",
        r.metrics.corrupted_block_detected,
        r.metrics.benign_self_evacuations,
        r.metrics.spawned,
        r.metrics.exited
    );
    assert!(r.metrics.attack_start.is_some());
    assert!(
        r.metrics.corrupted_block_detected.is_some(),
        "corrupted block must be flagged"
    );
    assert!(r.metrics.benign_self_evacuations > 0);
}

#[test]
fn im_v2_collusion_detected() {
    let r = run(AttackSetting::ImV2, ViolationKind::SuddenStop, 4);
    eprintln!(
        "IM_V2: detected={} latency={:?} global={:?} dissent={:?}",
        r.violation_detected(),
        r.detection_latency(),
        r.metrics.violation_global_report,
        r.metrics.wrongful_dissent
    );
    assert!(
        r.violation_detected(),
        "collusion must still be detected globally"
    );
}

#[test]
fn no_attack_clean_run() {
    let mut config = SimConfig::default();
    config.duration = 120.0;
    config.seed = 5;
    let r = Simulation::new(config).run();
    eprintln!(
        "clean: spawned={} exited={} accidents={} self_evac={} blocks={}",
        r.metrics.spawned,
        r.metrics.exited,
        r.metrics.accidents,
        r.metrics.benign_self_evacuations,
        r.metrics.blocks_broadcast
    );
    assert_eq!(r.metrics.accidents, 0);
    assert_eq!(
        r.metrics.benign_self_evacuations, 0,
        "no false self-evacuations"
    );
    assert!(r.metrics.exited > 30);
}
