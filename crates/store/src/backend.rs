//! Storage backends for the write-ahead log.
//!
//! A backend is a flat, append-only byte device with an explicit
//! durability barrier (`sync`). Two implementations ship:
//!
//! - [`MemBackend`] — an in-memory device that models the volatile page
//!   cache explicitly: bytes appended after the last `sync` are *not*
//!   durable, and [`MemBackend::crash`] discards them (optionally
//!   leaving a torn prefix behind, the way a real disk loses the tail
//!   of an in-flight sector write). This is what the chaos harness and
//!   the crash-simulator proptests drive.
//! - [`FileBackend`] — a real file using `File::sync_data` as the
//!   barrier, for running the simulator against an actual disk.

use std::fmt;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Errors a backend can surface.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure (file backend only).
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// A flat append-only byte device with an explicit durability barrier.
pub trait Backend: Send {
    /// Reads the entire device contents from offset zero.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the device cannot be read.
    fn read_all(&mut self) -> Result<Vec<u8>, StoreError>;

    /// Appends bytes at the end of the device. Appended bytes are only
    /// durable once a subsequent [`Backend::sync`] returns.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the device cannot be written.
    fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError>;

    /// Durability barrier: everything appended so far survives a crash.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the device cannot be flushed.
    fn sync(&mut self) -> Result<(), StoreError>;

    /// Discards everything past `len` bytes (used by recovery to drop a
    /// torn tail). The truncation itself is synced.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the device cannot be truncated.
    fn truncate(&mut self, len: u64) -> Result<(), StoreError>;

    /// Current device length in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the device cannot be inspected.
    fn len(&mut self) -> Result<u64, StoreError>;

    /// `true` when the device holds no bytes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the device cannot be inspected.
    fn is_empty(&mut self) -> Result<bool, StoreError> {
        Ok(self.len()? == 0)
    }
}

#[derive(Debug, Default)]
struct MemState {
    bytes: Vec<u8>,
    /// Prefix length that has passed a durability barrier.
    synced: usize,
}

/// In-memory backend with an explicit durable/volatile boundary and
/// crash simulation. Cloning yields another handle onto the *same*
/// device, so a test (or the simulator) can keep a handle while the WAL
/// owns another — exactly how a file on disk outlives the process that
/// wrote it.
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    state: Arc<Mutex<MemState>>,
}

impl MemBackend {
    /// A fresh, empty device.
    pub fn new() -> Self {
        MemBackend::default()
    }

    /// A device pre-seeded with an on-disk image, all of it durable —
    /// as if a previous process wrote and synced exactly these bytes.
    pub fn from_bytes(image: &[u8]) -> Self {
        let backend = MemBackend::default();
        {
            let mut s = backend.state.lock().expect("mem backend poisoned");
            s.bytes = image.to_vec();
            s.synced = s.bytes.len();
        }
        backend
    }

    /// Simulates a process/machine crash: all bytes past the last sync
    /// are lost, except for `torn` of them which survive as a partial
    /// (torn) tail — the classic half-written record. `torn` is clamped
    /// to the unsynced span.
    pub fn crash(&self, torn: usize) {
        let mut s = self.state.lock().expect("mem backend poisoned");
        let keep = s.synced + torn.min(s.bytes.len().saturating_sub(s.synced));
        s.bytes.truncate(keep);
        // What survived is what the disk now holds.
        s.synced = s.bytes.len();
    }

    /// Flips one bit at `offset` (for corruption tests). No-op when the
    /// offset is past the end.
    pub fn flip_bit(&self, offset: usize, bit: u8) {
        let mut s = self.state.lock().expect("mem backend poisoned");
        if let Some(b) = s.bytes.get_mut(offset) {
            *b ^= 1 << (bit % 8);
        }
    }

    /// Bytes currently past the durability barrier (i.e. at risk).
    pub fn unsynced(&self) -> usize {
        let s = self.state.lock().expect("mem backend poisoned");
        s.bytes.len() - s.synced
    }

    /// Snapshot of the full device contents (synced + volatile).
    pub fn contents(&self) -> Vec<u8> {
        self.state
            .lock()
            .expect("mem backend poisoned")
            .bytes
            .clone()
    }

    /// Deep copy of the device: an independent backend holding the same
    /// bytes *and* the same durability boundary. Unlike
    /// [`MemBackend::from_bytes`], bytes past the last sync stay
    /// volatile in the copy, so a crash injected into the fork tears
    /// exactly where it would have torn on the original — the forensic
    /// replay layer depends on this to reproduce crash scenarios.
    pub fn fork(&self) -> Self {
        let s = self.state.lock().expect("mem backend poisoned");
        MemBackend {
            state: Arc::new(Mutex::new(MemState {
                bytes: s.bytes.clone(),
                synced: s.synced,
            })),
        }
    }
}

impl Backend for MemBackend {
    fn read_all(&mut self) -> Result<Vec<u8>, StoreError> {
        Ok(self.contents())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        let mut s = self.state.lock().expect("mem backend poisoned");
        s.bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        let mut s = self.state.lock().expect("mem backend poisoned");
        s.synced = s.bytes.len();
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<(), StoreError> {
        let mut s = self.state.lock().expect("mem backend poisoned");
        let len = len.min(s.bytes.len() as u64) as usize;
        s.bytes.truncate(len);
        // Truncation is a repair step; make it durable immediately.
        s.synced = len;
        Ok(())
    }

    fn len(&mut self) -> Result<u64, StoreError> {
        let s = self.state.lock().expect("mem backend poisoned");
        Ok(s.bytes.len() as u64)
    }
}

/// File-backed device using `sync_data` as the durability barrier.
#[derive(Debug)]
pub struct FileBackend {
    file: std::fs::File,
    path: PathBuf,
}

impl FileBackend {
    /// Opens (or creates) the log file at `path` for append + read.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the file cannot be opened.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileBackend {
            file,
            path: path.to_path_buf(),
        })
    }

    /// The path this backend writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Backend for FileBackend {
    fn read_all(&mut self) -> Result<Vec<u8>, StoreError> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut out = Vec::new();
        self.file.read_to_end(&mut out)?;
        Ok(out)
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(bytes)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<(), StoreError> {
        self.file.set_len(len)?;
        self.file.sync_data()?;
        Ok(())
    }

    fn len(&mut self) -> Result<u64, StoreError> {
        Ok(self.file.metadata()?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_crash_drops_unsynced_tail() {
        let handle = MemBackend::new();
        let mut b = handle.clone();
        b.append(b"durable").unwrap();
        b.sync().unwrap();
        b.append(b"volatile").unwrap();
        assert_eq!(handle.unsynced(), 8);

        handle.crash(3);
        assert_eq!(handle.contents(), b"durablevol");
        handle.crash(0);
        assert_eq!(handle.contents(), b"durablevol");
    }

    #[test]
    fn mem_truncate_is_durable() {
        let handle = MemBackend::new();
        let mut b = handle.clone();
        b.append(b"0123456789").unwrap();
        b.sync().unwrap();
        b.truncate(4).unwrap();
        handle.crash(0);
        assert_eq!(handle.contents(), b"0123");
    }

    #[test]
    fn file_backend_round_trip() {
        let path =
            std::env::temp_dir().join(format!("nwade-store-test-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut b = FileBackend::open(&path).unwrap();
            b.append(b"hello ").unwrap();
            b.append(b"disk").unwrap();
            b.sync().unwrap();
        }
        {
            let mut b = FileBackend::open(&path).unwrap();
            assert_eq!(b.read_all().unwrap(), b"hello disk");
            b.truncate(5).unwrap();
            assert_eq!(b.read_all().unwrap(), b"hello");
            assert_eq!(b.len().unwrap(), 5);
        }
        let _ = std::fs::remove_file(&path);
    }
}
