//! Durable storage for the intersection manager.
//!
//! The paper's recovery story (§IV-B5) assumes the IM can resume
//! issuing valid blocks after a disruption. This crate supplies the
//! storage half of that promise: an append-only, checksummed
//! write-ahead log ([`Wal`]) over pluggable byte devices
//! ([`Backend`]), with fsync batching (one barrier per processing
//! window) and torn-tail repair on open. Periodic snapshots are
//! ordinary records appended *in* the log, so recovery is always
//! "latest intact snapshot + suffix replay" with a single scan.
//!
//! The crate is deliberately policy-free: record payloads are opaque
//! bytes. What goes in them (chain tip, reservation lanes, in-flight
//! window requests) is decided by `nwade::persist` in the core crate.
//!
//! Fault injection is a first-class citizen: [`MemBackend`] models the
//! volatile page cache explicitly and can [`MemBackend::crash`] with a
//! torn tail or [`MemBackend::flip_bit`] anywhere, which the chaos
//! harness and the crash-simulator proptests use to prove that
//! recovery always lands on a prefix of committed state.

#![forbid(unsafe_code)]

mod backend;
mod wal;

pub use backend::{Backend, FileBackend, MemBackend, StoreError};
pub use wal::{Recovery, Wal, FRAME_HEADER, MAX_RECORD_LEN};
