//! The write-ahead log: checksummed length-prefixed records.
//!
//! On-device layout is a flat sequence of frames:
//!
//! ```text
//! [u32 payload len (BE)] [32-byte SHA-256(payload)] [payload bytes]
//! ```
//!
//! Appends are buffered by the backend's page cache; [`Wal::commit`]
//! is the durability barrier (one `fsync` per processing window, not
//! per record). [`Wal::open`] scans the device and keeps the longest
//! prefix of intact frames: a frame whose length field overruns the
//! device, or whose checksum does not match its payload, marks the
//! start of a torn/corrupt tail, which is truncated away — recovery
//! always lands on a prefix of committed records and never panics on
//! hostile bytes.

use crate::backend::{Backend, StoreError};
use bytes::{Buf, BufMut};
use nwade_crypto::sha256;

/// Frame header size: length prefix + record checksum.
pub const FRAME_HEADER: usize = 4 + 32;

/// Upper bound on a single record's payload. A corrupted length field
/// must not make recovery allocate gigabytes; anything above this is
/// treated as tail corruption.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// What [`Wal::open`] found on the device.
#[derive(Debug)]
pub struct Recovery {
    /// Payloads of every intact record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Device length after dropping the torn/corrupt tail (if any).
    pub valid_len: u64,
    /// Bytes discarded from the tail (0 on a clean log).
    pub truncated: u64,
}

impl Recovery {
    /// `true` when the log needed no repair.
    pub fn clean(&self) -> bool {
        self.truncated == 0
    }
}

/// An open write-ahead log over some [`Backend`].
pub struct Wal {
    backend: Box<dyn Backend>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").finish_non_exhaustive()
    }
}

impl Wal {
    /// Opens the log: scans every frame, verifies checksums, truncates
    /// the first torn or corrupt frame and everything after it, and
    /// returns the surviving records alongside the writable log.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] only for device-level failures; corrupt
    /// *content* is handled by truncation, never an error.
    pub fn open(mut backend: Box<dyn Backend>) -> Result<(Self, Recovery), StoreError> {
        let bytes = backend.read_all()?;
        let mut records = Vec::new();
        let mut offset = 0usize;
        loop {
            let mut cursor: &[u8] = &bytes[offset..];
            let Ok(len) = cursor.try_get_u32() else {
                break;
            };
            if len == 0 || len > MAX_RECORD_LEN {
                break;
            }
            let mut digest = [0u8; 32];
            if cursor.try_copy_to_slice(&mut digest).is_err() {
                break;
            }
            let len = len as usize;
            if cursor.remaining() < len {
                break;
            }
            let payload = &cursor[..len];
            if sha256(payload).0 != digest {
                break;
            }
            records.push(payload.to_vec());
            offset += FRAME_HEADER + len;
        }
        let valid_len = offset as u64;
        let truncated = bytes.len() as u64 - valid_len;
        if truncated > 0 {
            backend.truncate(valid_len)?;
        }
        Ok((
            Wal { backend },
            Recovery {
                records,
                valid_len,
                truncated,
            },
        ))
    }

    /// Wraps an already-consistent device without the recovery scan.
    ///
    /// [`Wal::open`] repairs torn tails and hands back the surviving
    /// records — the right door for every normal caller. Forensic world
    /// snapshots instead fork a device mid-run (see
    /// [`crate::MemBackend::fork`]) whose contents are consistent *by
    /// construction*, including a possibly-unsynced tail that a scan
    /// would prematurely truncate; `resume` adopts such a device as-is
    /// so replayed crash injections tear exactly like the original.
    pub fn resume(backend: Box<dyn Backend>) -> Self {
        Wal { backend }
    }

    /// Appends one record (not yet durable — see [`Wal::commit`]).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the device rejects the write.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        assert!(
            !payload.is_empty() && payload.len() <= MAX_RECORD_LEN as usize,
            "record payload must be in 1..={MAX_RECORD_LEN} bytes"
        );
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.put_u32(payload.len() as u32);
        frame.put_slice(&sha256(payload).0);
        frame.put_slice(payload);
        self.backend.append(&frame)
    }

    /// Durability barrier: every record appended so far survives a
    /// crash once this returns.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the device cannot be flushed.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        self.backend.sync()
    }

    /// Appends one record and commits immediately.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the append or flush fails.
    pub fn append_committed(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        self.append(payload)?;
        self.commit()
    }

    /// Current device length in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the device cannot be inspected.
    pub fn len_bytes(&mut self) -> Result<u64, StoreError> {
        self.backend.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn reopen(handle: &MemBackend) -> Recovery {
        let (_wal, rec) = Wal::open(Box::new(handle.clone())).expect("open");
        rec
    }

    #[test]
    fn round_trip_and_clean_reopen() {
        let handle = MemBackend::new();
        let (mut wal, rec) = Wal::open(Box::new(handle.clone())).unwrap();
        assert!(rec.records.is_empty() && rec.clean());

        wal.append(b"alpha").unwrap();
        wal.append(b"beta").unwrap();
        wal.commit().unwrap();

        let rec = reopen(&handle);
        assert!(rec.clean());
        assert_eq!(rec.records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
    }

    #[test]
    fn torn_tail_is_truncated_to_committed_prefix() {
        let handle = MemBackend::new();
        let (mut wal, _) = Wal::open(Box::new(handle.clone())).unwrap();
        wal.append(b"committed").unwrap();
        wal.commit().unwrap();
        wal.append(b"in flight at crash time").unwrap();
        drop(wal);

        // Crash mid-write: 7 bytes of the un-synced frame hit the disk.
        handle.crash(7);
        let rec = reopen(&handle);
        assert_eq!(rec.records, vec![b"committed".to_vec()]);
        assert!(!rec.clean());
        assert_eq!(rec.truncated, 7);

        // After repair the log is clean again and writable.
        let (mut wal, rec) = Wal::open(Box::new(handle.clone())).unwrap();
        assert!(rec.clean());
        wal.append_committed(b"next").unwrap();
        let rec = reopen(&handle);
        assert_eq!(rec.records, vec![b"committed".to_vec(), b"next".to_vec()]);
    }

    #[test]
    fn bit_flip_drops_suffix_not_prefix() {
        let handle = MemBackend::new();
        let (mut wal, _) = Wal::open(Box::new(handle.clone())).unwrap();
        for payload in [b"one".as_slice(), b"two", b"three"] {
            wal.append(payload).unwrap();
        }
        wal.commit().unwrap();
        drop(wal);

        // Corrupt the second record's payload.
        let second_frame = FRAME_HEADER + 3;
        handle.flip_bit(second_frame + FRAME_HEADER + 1, 2);
        let rec = reopen(&handle);
        assert_eq!(rec.records, vec![b"one".to_vec()]);
        assert!(!rec.clean());
    }

    #[test]
    fn absurd_length_field_is_tail_corruption() {
        let handle = MemBackend::new();
        let (mut wal, _) = Wal::open(Box::new(handle.clone())).unwrap();
        wal.append_committed(b"good").unwrap();
        drop(wal);

        // Forge a frame with a huge length: must not allocate or panic.
        {
            let mut b = handle.clone();
            use crate::backend::Backend;
            let mut frame = Vec::new();
            frame.put_u32(u32::MAX);
            frame.extend_from_slice(&[0u8; 40]);
            b.append(&frame).unwrap();
            b.sync().unwrap();
        }
        let rec = reopen(&handle);
        assert_eq!(rec.records, vec![b"good".to_vec()]);
        assert!(!rec.clean());
    }
}
