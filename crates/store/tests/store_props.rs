//! Property tests for the store's crash-safety contract: whatever a
//! crash or corruption does to the tail of the log, recovery always
//! lands on a *prefix of the committed record sequence* — never a
//! reordered, altered, or invented record, and never a panic.

use nwade_store::{MemBackend, Wal, FRAME_HEADER};
use proptest::prelude::*;

/// One step of a simulated logging session.
#[derive(Debug, Clone)]
enum Op {
    /// Append a record of this many bytes (content derived from the
    /// running record counter, so every record is distinguishable).
    Append(usize),
    /// Fsync everything appended so far.
    Commit,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Three append arms to one commit arm ≈ a 3:1 append/commit mix.
    prop_oneof![
        (1usize..120).prop_map(Op::Append),
        (1usize..40).prop_map(Op::Append),
        (40usize..120).prop_map(Op::Append),
        Just(Op::Commit),
    ]
}

/// Runs the op stream against a fresh store; returns the backend
/// handle, every record appended (in order), and how many of them were
/// covered by the last commit.
fn run_session(ops: &[Op]) -> (MemBackend, Vec<Vec<u8>>, usize) {
    let handle = MemBackend::new();
    let (mut wal, recovery) = Wal::open(Box::new(handle.clone())).expect("fresh store opens");
    assert!(recovery.clean(), "fresh store is clean");
    let mut appended: Vec<Vec<u8>> = Vec::new();
    let mut committed = 0usize;
    for op in ops {
        match op {
            Op::Append(len) => {
                let tag = appended.len() as u8;
                let payload: Vec<u8> = (0..*len)
                    .map(|i| tag ^ (i as u8).wrapping_mul(31))
                    .collect();
                wal.append(&payload).expect("append");
                appended.push(payload);
            }
            Op::Commit => {
                wal.commit().expect("commit");
                committed = appended.len();
            }
        }
    }
    (handle, appended, committed)
}

/// Recovered records must equal a prefix of the appended sequence; with
/// `min_len` (records known durable) as a lower bound on that prefix.
fn assert_prefix(records: &[Vec<u8>], appended: &[Vec<u8>], min_len: usize) {
    assert!(
        records.len() >= min_len,
        "recovery lost committed records: kept {} of {} durable",
        records.len(),
        min_len
    );
    assert!(
        records.len() <= appended.len(),
        "recovery invented records: {} recovered from {} appended",
        records.len(),
        appended.len()
    );
    for (i, (got, want)) in records.iter().zip(appended).enumerate() {
        assert_eq!(got, want, "record {i} altered by recovery");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A crash that tears the unsynced tail at any byte offset recovers
    /// to at least the committed prefix, with every surviving record
    /// byte-identical and in order.
    #[test]
    fn crash_recovers_committed_prefix(
        ops in proptest::collection::vec(op_strategy(), 1..24),
        torn in 0usize..4096,
    ) {
        let (handle, appended, committed) = run_session(&ops);
        handle.crash(torn);
        let (_, recovery) = Wal::open(Box::new(handle.clone())).expect("reopen");
        assert_prefix(&recovery.records, &appended, committed);
    }

    /// A single bit flip anywhere in the log never panics, never
    /// reorders or alters surviving records, and at worst truncates the
    /// log at the damaged frame: everything before the flipped byte's
    /// frame survives byte-identical.
    #[test]
    fn bit_flip_recovers_a_prefix(
        ops in proptest::collection::vec(op_strategy(), 1..24),
        offset_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (handle, appended, _) = run_session(&ops);
        let len = handle.contents().len();
        prop_assume!(len > 0);
        let offset = ((len as f64) * offset_frac) as usize;
        let offset = offset.min(len - 1);
        handle.flip_bit(offset, bit);

        // Records whose frames end at or before the flipped byte are
        // untouched and must survive.
        let mut intact = 0usize;
        let mut cursor = 0usize;
        for record in &appended {
            cursor += FRAME_HEADER + record.len();
            if cursor <= offset {
                intact += 1;
            } else {
                break;
            }
        }

        let (_, recovery) = Wal::open(Box::new(handle.clone())).expect("reopen");
        assert_prefix(&recovery.records, &appended, intact);
    }

    /// Crash + reopen + keep writing: the log stays usable after a torn
    /// tail was repaired, and a second crash-free reopen sees the full
    /// post-repair sequence.
    #[test]
    fn store_is_writable_after_repair(
        ops in proptest::collection::vec(op_strategy(), 1..16),
        torn in 0usize..512,
    ) {
        let (handle, appended, committed) = run_session(&ops);
        handle.crash(torn);
        let (mut wal, recovery) = Wal::open(Box::new(handle.clone())).expect("reopen");
        assert_prefix(&recovery.records, &appended, committed);
        let survived = recovery.records.len();

        wal.append_committed(b"post-repair record").expect("append after repair");
        drop(wal);
        let (_, second) = Wal::open(Box::new(handle.clone())).expect("second reopen");
        prop_assert!(second.clean(), "no new damage after repair");
        prop_assert_eq!(second.records.len(), survived + 1);
        prop_assert_eq!(second.records.last().map(Vec::as_slice), Some(&b"post-repair record"[..]));
    }
}

/// Exhaustive (non-random) torn-tail sweep: for a small fixed session,
/// truncating the *synced* image at every possible byte length must
/// still recover a committed prefix — this covers cut points the random
/// crash test may miss (mid-length-field, mid-digest, mid-payload).
#[test]
fn every_truncation_point_recovers_a_prefix() {
    let ops = [
        Op::Append(3),
        Op::Append(40),
        Op::Commit,
        Op::Append(17),
        Op::Commit,
    ];
    let (handle, appended, _) = run_session(&ops);
    let full = handle.contents();
    for cut in 0..=full.len() {
        let img = MemBackend::from_bytes(&full[..cut]);
        let (_, recovery) = Wal::open(Box::new(img.clone())).expect("reopen truncated");
        assert!(
            recovery.records.len() <= appended.len(),
            "cut {cut}: invented records"
        );
        for (i, (got, want)) in recovery.records.iter().zip(&appended).enumerate() {
            assert_eq!(got, want, "cut {cut}: record {i} altered");
        }
    }
}
