//! Poisson arrival process.

use rand::Rng;

/// Generates exponential inter-arrival times for a Poisson process with a
/// fixed rate in vehicles per minute (the paper sweeps 20–120 veh/min).
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate_per_second: f64,
    next_time: f64,
}

impl PoissonArrivals {
    /// Creates a process with `rate` vehicles per minute, starting at
    /// time 0.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is non-positive or not finite.
    pub fn new(rate_per_minute: f64) -> Self {
        assert!(
            rate_per_minute > 0.0 && rate_per_minute.is_finite(),
            "arrival rate must be positive, got {rate_per_minute}"
        );
        PoissonArrivals {
            rate_per_second: rate_per_minute / 60.0,
            next_time: 0.0,
        }
    }

    /// The configured rate in vehicles per minute.
    pub fn rate_per_minute(&self) -> f64 {
        self.rate_per_second * 60.0
    }

    /// Draws the next arrival time in seconds.
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        // Inverse-CDF exponential sampling; 1-u avoids ln(0).
        let u: f64 = rng.gen::<f64>();
        let dt = -(1.0 - u).ln() / self.rate_per_second;
        self.next_time += dt;
        self.next_time
    }

    /// All arrival times within `[0, horizon)` seconds.
    pub fn arrivals_until<R: Rng + ?Sized>(&mut self, horizon: f64, rng: &mut R) -> Vec<f64> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival(rng);
            if t >= horizon {
                // Keep the overshoot as the next arrival state.
                self.next_time = t;
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut p = PoissonArrivals::new(80.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut prev = 0.0;
        for _ in 0..500 {
            let t = p.next_arrival(&mut rng);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn empirical_rate_matches_configuration() {
        for rate in [20.0, 80.0, 120.0] {
            let mut p = PoissonArrivals::new(rate);
            let mut rng = StdRng::seed_from_u64(7);
            let horizon = 3600.0; // one hour
            let n = p.arrivals_until(horizon, &mut rng).len() as f64;
            let expected = rate * 60.0;
            assert!(
                (n - expected).abs() < 4.0 * expected.sqrt(),
                "rate {rate}: got {n} arrivals, expected ~{expected}"
            );
        }
    }

    #[test]
    fn arrivals_until_respects_horizon() {
        let mut p = PoissonArrivals::new(60.0);
        let mut rng = StdRng::seed_from_u64(3);
        let times = p.arrivals_until(120.0, &mut rng);
        assert!(times.iter().all(|&t| t < 120.0));
        // Subsequent window continues after the horizon.
        let later = p.arrivals_until(240.0, &mut rng);
        assert!(later
            .iter()
            .all(|&t| (120.0..240.0).contains(&t) || t >= 120.0));
        assert!(later.first().copied().unwrap_or(f64::MAX) >= 120.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            let mut p = PoissonArrivals::new(40.0);
            let mut rng = StdRng::seed_from_u64(seed);
            p.arrivals_until(60.0, &mut rng)
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }

    #[test]
    fn rate_accessor() {
        assert_eq!(PoissonArrivals::new(55.0).rate_per_minute(), 55.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = PoissonArrivals::new(0.0);
    }
}
