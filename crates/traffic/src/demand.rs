//! Combined demand generation: arrivals × legs × turn mix.

use crate::arrival::PoissonArrivals;
use crate::descriptor::{VehicleDescriptor, VehicleId};
use crate::turns::TurnMix;
use nwade_intersection::{MovementId, Topology, TurnKind};
use rand::Rng;

/// One vehicle entering the modeled area.
#[derive(Debug, Clone, PartialEq)]
pub struct SpawnEvent {
    /// Spawn time in seconds.
    pub time: f64,
    /// Assigned vehicle id.
    pub id: VehicleId,
    /// Static characteristics.
    pub descriptor: VehicleDescriptor,
    /// The movement the vehicle intends to follow.
    pub movement: MovementId,
    /// Initial speed at spawn, m/s.
    pub speed: f64,
}

/// Generates spawn events for a topology: Poisson arrivals assigned to a
/// uniformly random leg, a sampled turn kind, and the matching movement.
///
/// If the sampled turn does not exist at the chosen leg (e.g. "straight"
/// from a DDI ramp), another movement from the same leg is used instead —
/// drivers take what the geometry offers.
#[derive(Debug, Clone)]
pub struct DemandGenerator {
    arrivals: PoissonArrivals,
    mix: TurnMix,
    next_id: u64,
    initial_speed: f64,
}

impl DemandGenerator {
    /// Creates a generator with `rate` vehicles/minute and the given turn
    /// mix. Vehicles spawn at `initial_speed` m/s.
    pub fn new(rate_per_minute: f64, mix: TurnMix, initial_speed: f64) -> Self {
        assert!(
            initial_speed >= 0.0,
            "initial speed must be non-negative, got {initial_speed}"
        );
        DemandGenerator {
            arrivals: PoissonArrivals::new(rate_per_minute),
            mix,
            next_id: 0,
            initial_speed,
        }
    }

    /// Generates all spawn events in `[0, horizon)` seconds.
    pub fn generate<R: Rng + ?Sized>(
        &mut self,
        topology: &Topology,
        horizon: f64,
        rng: &mut R,
    ) -> Vec<SpawnEvent> {
        let times = self.arrivals.arrivals_until(horizon, rng);
        let mut out = Vec::with_capacity(times.len());
        for time in times {
            let leg = topology.legs()[rng.gen_range(0..topology.legs().len())].id();
            let turn = self.mix.sample(rng);
            let movement = self.pick_movement(topology, leg, turn, rng);
            let id = VehicleId::new(self.next_id);
            self.next_id += 1;
            out.push(SpawnEvent {
                time,
                id,
                descriptor: VehicleDescriptor::random(rng),
                movement,
                speed: self.initial_speed,
            });
        }
        out
    }

    fn pick_movement<R: Rng + ?Sized>(
        &self,
        topology: &Topology,
        leg: nwade_intersection::LegId,
        turn: TurnKind,
        rng: &mut R,
    ) -> MovementId {
        let preferred = topology.movements_with_turn(leg, turn);
        let candidates = if preferred.is_empty() {
            topology.movements_from(leg)
        } else {
            preferred
        };
        assert!(
            !candidates.is_empty(),
            "topology leg {leg} has no movements"
        );
        candidates[rng.gen_range(0..candidates.len())].id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nwade_intersection::{build, GeometryConfig, IntersectionKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topo() -> Topology {
        build(IntersectionKind::FourWayCross, &GeometryConfig::default())
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let t = topo();
        let mut g = DemandGenerator::new(80.0, TurnMix::default(), 15.0);
        let events = g.generate(&t, 120.0, &mut StdRng::seed_from_u64(1));
        assert!(!events.is_empty());
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.id.raw(), i as u64);
            assert_eq!(e.speed, 15.0);
        }
    }

    #[test]
    fn spawn_times_sorted_within_horizon() {
        let t = topo();
        let mut g = DemandGenerator::new(60.0, TurnMix::default(), 10.0);
        let events = g.generate(&t, 300.0, &mut StdRng::seed_from_u64(2));
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(events.iter().all(|e| e.time < 300.0));
    }

    #[test]
    fn movements_are_valid_for_topology() {
        let t = topo();
        let mut g = DemandGenerator::new(100.0, TurnMix::default(), 10.0);
        let events = g.generate(&t, 120.0, &mut StdRng::seed_from_u64(3));
        for e in &events {
            assert!(e.movement.index() < t.movements().len());
        }
    }

    #[test]
    fn turn_mix_respected_on_cross() {
        let t = topo();
        let mut g = DemandGenerator::new(120.0, TurnMix::default(), 10.0);
        let events = g.generate(&t, 3600.0, &mut StdRng::seed_from_u64(4));
        let n = events.len() as f64;
        let lefts = events
            .iter()
            .filter(|e| t.movement(e.movement).turn() == TurnKind::Left)
            .count() as f64;
        assert!((lefts / n - 0.25).abs() < 0.03, "left share {}", lefts / n);
    }

    #[test]
    fn ddi_fallback_for_unavailable_straight() {
        // DDI ramps have no straight movement; the generator must fall
        // back instead of panicking.
        let t = build(IntersectionKind::FourWayDdi, &GeometryConfig::default());
        let mut g = DemandGenerator::new(120.0, TurnMix::new(0.0, 1.0, 0.0), 10.0);
        let events = g.generate(&t, 600.0, &mut StdRng::seed_from_u64(5));
        // Some vehicles spawned on ramps; all got valid movements.
        assert!(events
            .iter()
            .any(|e| matches!(t.movement(e.movement).from_leg().index(), 1 | 3)));
    }

    #[test]
    fn subsequent_generate_calls_continue_ids_and_time() {
        let t = topo();
        let mut g = DemandGenerator::new(80.0, TurnMix::default(), 10.0);
        let mut rng = StdRng::seed_from_u64(6);
        let first = g.generate(&t, 60.0, &mut rng);
        let second = g.generate(&t, 120.0, &mut rng);
        let last_id = first.last().expect("events").id.raw();
        assert_eq!(second.first().expect("events").id.raw(), last_id + 1);
        assert!(second.iter().all(|e| e.time >= 60.0 && e.time < 120.0));
    }
}
