//! Vehicle identity and static characteristics.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique vehicle identifier within a simulation run.
///
/// The paper allows this to be an anonymous identity; here it is a plain
/// counter issued by the demand generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VehicleId(u64);

impl VehicleId {
    /// Wraps a raw id.
    pub const fn new(raw: u64) -> Self {
        VehicleId(raw)
    }

    /// The raw id value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for VehicleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

const BRANDS: [&str; 8] = [
    "Aurora", "Borealis", "Cascade", "Dynamo", "Electra", "Fulcrum", "Gale", "Horizon",
];
const MODELS: [&str; 6] = ["S1", "X3", "M5", "T7", "R9", "L2"];
const COLORS: [&str; 7] = ["white", "black", "silver", "red", "blue", "gray", "green"];

/// The static characteristics `char_j` carried in every travel plan
/// (Eq. 1): car brand, model and color, which watchers and alert messages
/// use to identify a suspect visually.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VehicleDescriptor {
    /// Manufacturer name.
    pub brand: String,
    /// Model designation.
    pub model: String,
    /// Body color.
    pub color: String,
}

impl VehicleDescriptor {
    /// Samples a random descriptor.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        VehicleDescriptor {
            brand: BRANDS[rng.gen_range(0..BRANDS.len())].to_string(),
            model: MODELS[rng.gen_range(0..MODELS.len())].to_string(),
            color: COLORS[rng.gen_range(0..COLORS.len())].to_string(),
        }
    }

    /// Canonical byte encoding used when hashing travel plans.
    pub fn encode(&self) -> Vec<u8> {
        format!("{}|{}|{}", self.brand, self.model, self.color).into_bytes()
    }

    /// Decodes the canonical `brand|model|color` encoding.
    ///
    /// Round-trips [`VehicleDescriptor::encode`] exactly for any
    /// descriptor whose fields are `|`-free (all generated descriptors
    /// are). Returns `None` on non-UTF-8 input or a wrong field count,
    /// never panics — the bytes may come from a torn WAL tail.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let s = std::str::from_utf8(bytes).ok()?;
        let mut parts = s.split('|');
        let brand = parts.next()?.to_string();
        let model = parts.next()?.to_string();
        let color = parts.next()?.to_string();
        if parts.next().is_some() {
            return None;
        }
        Some(VehicleDescriptor {
            brand,
            model,
            color,
        })
    }
}

impl fmt::Display for VehicleDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.color, self.brand, self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn id_round_trip_and_display() {
        let id = VehicleId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.to_string(), "V42");
        assert!(VehicleId::new(1) < VehicleId::new(2));
    }

    #[test]
    fn random_descriptor_is_deterministic_per_seed() {
        let a = VehicleDescriptor::random(&mut StdRng::seed_from_u64(5));
        let b = VehicleDescriptor::random(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn descriptors_vary_across_draws() {
        let mut rng = StdRng::seed_from_u64(0);
        let draws: std::collections::HashSet<_> = (0..100)
            .map(|_| VehicleDescriptor::random(&mut rng))
            .collect();
        assert!(
            draws.len() > 10,
            "only {} distinct descriptors",
            draws.len()
        );
    }

    #[test]
    fn encode_is_injective_over_fields() {
        let a = VehicleDescriptor {
            brand: "A".into(),
            model: "B".into(),
            color: "C".into(),
        };
        let b = VehicleDescriptor {
            brand: "AB".into(),
            model: "".into(),
            color: "C".into(),
        };
        assert_ne!(a.encode(), b.encode());
    }

    #[test]
    fn decode_round_trips_and_rejects_garbage() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let d = VehicleDescriptor::random(&mut rng);
            assert_eq!(VehicleDescriptor::decode(&d.encode()), Some(d));
        }
        assert_eq!(VehicleDescriptor::decode(b"only|one-sep"), None);
        assert_eq!(VehicleDescriptor::decode(b"a|b|c|d"), None);
        assert_eq!(VehicleDescriptor::decode(&[0xFF, 0xFE, b'|', b'|']), None);
    }

    #[test]
    fn display_is_human_readable() {
        let d = VehicleDescriptor {
            brand: "Aurora".into(),
            model: "S1".into(),
            color: "red".into(),
        };
        assert_eq!(d.to_string(), "red Aurora S1");
    }
}
