//! Vehicle kinematic limits.

use nwade_geometry::units::{mph_to_mps, paper};
use serde::{Deserialize, Serialize};

/// Acceleration, deceleration and speed caps for a vehicle.
///
/// Defaults are the paper's §VI-A settings: 50 mph speed limit, 2 m/s²
/// maximum acceleration, 3 m/s² maximum deceleration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KinematicLimits {
    /// Maximum speed in m/s.
    pub v_max: f64,
    /// Maximum acceleration in m/s².
    pub a_max: f64,
    /// Maximum deceleration magnitude in m/s².
    pub d_max: f64,
}

impl Default for KinematicLimits {
    fn default() -> Self {
        KinematicLimits {
            v_max: mph_to_mps(50.0),
            a_max: paper::MAX_ACCEL,
            d_max: paper::MAX_DECEL,
        }
    }
}

impl KinematicLimits {
    /// Creates limits.
    ///
    /// # Panics
    ///
    /// Panics when any limit is non-positive or not finite.
    pub fn new(v_max: f64, a_max: f64, d_max: f64) -> Self {
        assert!(
            v_max > 0.0 && a_max > 0.0 && d_max > 0.0,
            "kinematic limits must be positive"
        );
        assert!(
            v_max.is_finite() && a_max.is_finite() && d_max.is_finite(),
            "kinematic limits must be finite"
        );
        KinematicLimits {
            v_max,
            a_max,
            d_max,
        }
    }

    /// Distance needed to brake from `speed` to a stop.
    pub fn stopping_distance(&self, speed: f64) -> f64 {
        speed * speed / (2.0 * self.d_max)
    }

    /// Minimum safe gap to a leader both moving at `speed`, with reaction
    /// time `t_react`: reaction distance plus a vehicle length of margin.
    pub fn safe_headway_distance(&self, speed: f64, t_react: f64) -> f64 {
        speed * t_react + 5.0
    }

    /// Time to accelerate from `v0` to `v1` (capped at `v_max`).
    pub fn accel_time(&self, v0: f64, v1: f64) -> f64 {
        let v1 = v1.min(self.v_max);
        if v1 >= v0 {
            (v1 - v0) / self.a_max
        } else {
            (v0 - v1) / self.d_max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let k = KinematicLimits::default();
        assert!((k.v_max - 22.352).abs() < 1e-3);
        assert_eq!(k.a_max, 2.0);
        assert_eq!(k.d_max, 3.0);
    }

    #[test]
    fn stopping_distance_quadratic() {
        let k = KinematicLimits::default();
        assert_eq!(k.stopping_distance(0.0), 0.0);
        // v²/(2·3): at 22.352 m/s → ~83.3 m.
        assert!((k.stopping_distance(22.352) - 83.27).abs() < 0.1);
        // Doubling speed quadruples the distance.
        assert!((k.stopping_distance(20.0) / k.stopping_distance(10.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn headway_grows_with_speed() {
        let k = KinematicLimits::default();
        assert!(k.safe_headway_distance(20.0, 1.0) > k.safe_headway_distance(5.0, 1.0));
        assert!(k.safe_headway_distance(0.0, 1.0) >= 5.0);
    }

    #[test]
    fn accel_time_both_directions() {
        let k = KinematicLimits::new(30.0, 2.0, 3.0);
        assert_eq!(k.accel_time(0.0, 10.0), 5.0);
        assert_eq!(k.accel_time(10.0, 4.0), 2.0);
        // Capped at v_max.
        assert_eq!(k.accel_time(0.0, 100.0), 15.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_limit_panics() {
        let _ = KinematicLimits::new(0.0, 1.0, 1.0);
    }
}
