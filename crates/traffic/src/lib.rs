//! Traffic demand and vehicle modeling for the NWADE reproduction.
//!
//! Implements §VI-A of the paper's experimental setup:
//!
//! * Poisson vehicle arrivals at 20–120 vehicles/minute ([`arrival`]),
//! * a 25% left / 50% straight / 25% right turning mix ([`turns`]),
//! * kinematic limits of 50 mph, 2 m/s² acceleration, 3 m/s² braking
//!   ([`kinematics`]),
//! * the static vehicle characteristics (brand/model/color) used to
//!   identify suspects in alert messages ([`descriptor`]),
//! * a combined demand generator emitting spawn events ([`demand`]).

#![forbid(unsafe_code)]

pub mod arrival;
pub mod demand;
pub mod descriptor;
pub mod kinematics;
pub mod turns;

pub use arrival::PoissonArrivals;
pub use demand::{DemandGenerator, SpawnEvent};
pub use descriptor::{VehicleDescriptor, VehicleId};
pub use kinematics::KinematicLimits;
pub use turns::TurnMix;
