//! Turning-movement mix.

use nwade_intersection::TurnKind;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A categorical distribution over turn kinds.
///
/// The paper's default is 25% left, 50% straight, 25% right (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TurnMix {
    /// Probability of a left turn.
    pub left: f64,
    /// Probability of going straight.
    pub straight: f64,
    /// Probability of a right turn.
    pub right: f64,
}

impl Default for TurnMix {
    fn default() -> Self {
        TurnMix {
            left: 0.25,
            straight: 0.50,
            right: 0.25,
        }
    }
}

impl TurnMix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics unless the weights are non-negative and sum to 1 (±1e-9).
    pub fn new(left: f64, straight: f64, right: f64) -> Self {
        assert!(
            left >= 0.0 && straight >= 0.0 && right >= 0.0,
            "turn weights must be non-negative"
        );
        assert!(
            ((left + straight + right) - 1.0).abs() < 1e-9,
            "turn weights must sum to 1, got {}",
            left + straight + right
        );
        TurnMix {
            left,
            straight,
            right,
        }
    }

    /// Samples a turn kind.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> TurnKind {
        let u: f64 = rng.gen();
        if u < self.left {
            TurnKind::Left
        } else if u < self.left + self.straight {
            TurnKind::Straight
        } else {
            TurnKind::Right
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_is_paper_mix() {
        let m = TurnMix::default();
        assert_eq!((m.left, m.straight, m.right), (0.25, 0.50, 0.25));
    }

    #[test]
    fn empirical_frequencies_match() {
        let m = TurnMix::default();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            match m.sample(&mut rng) {
                TurnKind::Left => counts[0] += 1,
                TurnKind::Straight => counts[1] += 1,
                TurnKind::Right => counts[2] += 1,
            }
        }
        let f = |c: usize| c as f64 / n as f64;
        assert!((f(counts[0]) - 0.25).abs() < 0.02, "left {}", f(counts[0]));
        assert!((f(counts[1]) - 0.50).abs() < 0.02);
        assert!((f(counts[2]) - 0.25).abs() < 0.02);
    }

    #[test]
    fn degenerate_mix_always_samples_that_kind() {
        let m = TurnMix::new(0.0, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!((0..100).all(|_| m.sample(&mut rng) == TurnKind::Straight));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_weights_panic() {
        let _ = TurnMix::new(0.5, 0.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = TurnMix::new(-0.5, 1.0, 0.5);
    }
}
