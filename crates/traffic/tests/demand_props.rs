//! Property tests over the demand generator's public API.

use nwade_intersection::{build, GeometryConfig, IntersectionKind};
use nwade_traffic::{DemandGenerator, TurnMix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Spawn streams are sorted, in-horizon, uniquely identified, and
    /// reference valid movements, for any rate / mix / topology.
    #[test]
    fn spawn_streams_are_well_formed(
        rate in 5.0..150.0f64,
        horizon in 30.0..400.0f64,
        kind_idx in 0usize..5,
        left in 0.0..1.0f64,
        split in 0.0..1.0f64,
        seed in any::<u64>(),
    ) {
        let kind = IntersectionKind::ALL[kind_idx];
        let topo = build(kind, &GeometryConfig::default());
        let straight = (1.0 - left) * split;
        let right = 1.0 - left - straight;
        let mix = TurnMix::new(left, straight, right);
        let mut g = DemandGenerator::new(rate, mix, 12.0);
        let events = g.generate(&topo, horizon, &mut StdRng::seed_from_u64(seed));
        let mut ids = std::collections::HashSet::new();
        for w in events.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
        for e in &events {
            prop_assert!(e.time >= 0.0 && e.time < horizon);
            prop_assert!(e.movement.index() < topo.movements().len());
            prop_assert!(ids.insert(e.id), "duplicate id {}", e.id);
        }
        // Expected count within 6 sigma of the Poisson mean.
        let mean = rate / 60.0 * horizon;
        prop_assert!(
            (events.len() as f64 - mean).abs() < 6.0 * mean.sqrt() + 6.0,
            "count {} vs mean {mean:.0}", events.len()
        );
    }
}
