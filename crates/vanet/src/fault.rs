//! Composable channel fault injection.
//!
//! The paper assumes detection and evacuation keep working over an
//! adversarial, lossy VANET (§VI). The [`FaultModel`] makes that
//! assumption testable: it layers message duplication, latency jitter
//! (which reorders deliveries), payload corruption, Gilbert–Elliott burst
//! loss, per-node degradation, and timed communication blackouts on top of
//! the medium's base latency/loss model. All faults default to off, so a
//! default model behaves exactly like the pre-fault medium.
//!
//! Corruption is modelled as a flag on the delivery rather than in-band
//! bit-flips, because the medium is generic over the payload type; the
//! protocol layer mangles the payload of flagged deliveries so that
//! signature / hash verification fails (Algorithm 1's reject path).

use crate::message::NodeId;
use std::collections::BTreeMap;

/// Two-state Gilbert–Elliott burst-loss channel.
///
/// The channel is either *good* or *bad*; each reception attempt first
/// samples a state transition, then samples loss at the state's rate.
/// Long stays in the bad state produce the bursty, correlated losses that
/// independent per-packet loss cannot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstLoss {
    /// Probability of moving good → bad per reception attempt.
    pub enter_bad: f64,
    /// Probability of moving bad → good per reception attempt.
    pub exit_bad: f64,
    /// Loss rate while in the good state.
    pub loss_good: f64,
    /// Loss rate while in the bad state.
    pub loss_bad: f64,
}

impl BurstLoss {
    /// A conventional parameterization: mostly-good channel whose bad
    /// state loses everything, with `average` long-run loss.
    pub fn bursty(average: f64) -> Self {
        let average = average.clamp(0.0, 1.0);
        // Stationary P(bad) = enter / (enter + exit); with loss_bad = 1,
        // loss_good = 0 the long-run loss equals P(bad).
        BurstLoss {
            enter_bad: 0.05 * average / (1.0 - average).max(0.05),
            exit_bad: 0.05,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    }

    fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("burst enter_bad", self.enter_bad),
            ("burst exit_bad", self.exit_bad),
            ("burst loss_good", self.loss_good),
            ("burst loss_bad", self.loss_bad),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be within [0, 1]"));
            }
        }
        Ok(())
    }
}

/// Extra impairment applied to every reception at (or send from) one node.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeDegradation {
    /// Additional loss probability, combined independently with the
    /// channel loss.
    pub extra_loss: f64,
    /// Additional one-way latency in seconds.
    pub extra_latency: f64,
}

impl NodeDegradation {
    fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.extra_loss) {
            return Err("node extra_loss must be within [0, 1]".into());
        }
        if !(self.extra_latency >= 0.0 && self.extra_latency.is_finite()) {
            return Err("node extra_latency must be finite and non-negative".into());
        }
        Ok(())
    }
}

/// A timed communication blackout (network partition).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blackout {
    /// Start of the window, seconds.
    pub start: f64,
    /// End of the window, seconds (exclusive).
    pub end: f64,
    /// The node cut off from the network, or `None` for a total blackout.
    pub node: Option<NodeId>,
}

impl Blackout {
    /// Whether this blackout silences `node` at time `now`.
    pub fn covers(&self, now: f64, node: NodeId) -> bool {
        now >= self.start && now < self.end && self.node.is_none_or(|n| n == node)
    }

    fn validate(&self) -> Result<(), String> {
        if !(self.start.is_finite() && self.end.is_finite() && self.start < self.end) {
            return Err("blackout window must be finite with start < end".into());
        }
        Ok(())
    }
}

/// The composable fault model; all faults default to off.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultModel {
    /// Probability that a reached recipient receives a second copy.
    pub duplicate_probability: f64,
    /// Maximum extra delivery latency in seconds, drawn uniformly per
    /// copy; distinct draws reorder deliveries.
    pub latency_jitter: f64,
    /// Probability that a delivered copy arrives corrupted (flagged; the
    /// protocol layer mangles the payload so verification must fail).
    pub corruption_probability: f64,
    /// Gilbert–Elliott burst loss layered over the base loss rate.
    pub burst: Option<BurstLoss>,
    /// Per-node degradation (extra loss / latency for that endpoint).
    pub degraded: BTreeMap<NodeId, NodeDegradation>,
    /// Timed blackout windows.
    pub blackouts: Vec<Blackout>,
}

impl FaultModel {
    /// `true` when every fault is off (the medium can skip fault paths).
    pub fn is_quiet(&self) -> bool {
        self.duplicate_probability == 0.0
            && self.latency_jitter == 0.0
            && self.corruption_probability == 0.0
            && self.burst.is_none()
            && self.degraded.is_empty()
            && self.blackouts.is_empty()
    }

    /// A model whose faults all scale with one `intensity` knob in
    /// `[0, 1]`: at 0 the channel is clean; at 1 it duplicates ~30 % of
    /// copies, jitters up to 150 ms, corrupts ~20 %, and suffers ~30 %
    /// bursty loss.
    pub fn at_intensity(intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        let burst = if i > 0.0 {
            Some(BurstLoss::bursty(0.3 * i))
        } else {
            None
        };
        FaultModel {
            duplicate_probability: 0.3 * i,
            latency_jitter: 0.15 * i,
            corruption_probability: 0.2 * i,
            burst,
            degraded: BTreeMap::new(),
            blackouts: Vec::new(),
        }
    }

    /// Whether any blackout silences `node` at `now`.
    pub fn blacked_out(&self, now: f64, node: NodeId) -> bool {
        self.blackouts.iter().any(|b| b.covers(now, node))
    }

    /// The degradation for `node`, defaulting to none.
    pub fn degradation(&self, node: NodeId) -> NodeDegradation {
        self.degraded.get(&node).copied().unwrap_or_default()
    }

    /// Validates every layered fault.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("duplicate probability", self.duplicate_probability),
            ("corruption probability", self.corruption_probability),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be within [0, 1]"));
            }
        }
        if !(self.latency_jitter >= 0.0 && self.latency_jitter.is_finite()) {
            return Err("latency jitter must be finite and non-negative".into());
        }
        if let Some(burst) = &self.burst {
            burst.validate()?;
        }
        for degradation in self.degraded.values() {
            degradation.validate()?;
        }
        for blackout in &self.blackouts {
            blackout.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet_and_valid() {
        let m = FaultModel::default();
        assert!(m.is_quiet());
        m.validate().expect("default valid");
    }

    #[test]
    fn intensity_zero_is_quiet_one_is_valid() {
        assert!(FaultModel::at_intensity(0.0).is_quiet());
        let full = FaultModel::at_intensity(1.0);
        assert!(!full.is_quiet());
        full.validate().expect("full intensity valid");
        // Out-of-range intensities clamp instead of producing invalid
        // probabilities.
        FaultModel::at_intensity(7.0).validate().expect("clamped");
        FaultModel::at_intensity(-3.0).validate().expect("clamped");
    }

    #[test]
    fn invalid_probabilities_rejected() {
        let mut m = FaultModel::default();
        m.duplicate_probability = 1.5;
        assert!(m.validate().is_err());
        let mut m = FaultModel::default();
        m.corruption_probability = -0.1;
        assert!(m.validate().is_err());
        let mut m = FaultModel::default();
        m.latency_jitter = f64::NAN;
        assert!(m.validate().is_err());
        let mut m = FaultModel::default();
        m.latency_jitter = f64::INFINITY;
        assert!(m.validate().is_err());
        let mut m = FaultModel::default();
        m.burst = Some(BurstLoss {
            enter_bad: 2.0,
            exit_bad: 0.1,
            loss_good: 0.0,
            loss_bad: 1.0,
        });
        assert!(m.validate().is_err());
    }

    #[test]
    fn blackout_windows_cover_scoped_nodes() {
        let b = Blackout {
            start: 10.0,
            end: 20.0,
            node: Some(NodeId::Imu),
        };
        assert!(b.covers(10.0, NodeId::Imu));
        assert!(!b.covers(20.0, NodeId::Imu), "end exclusive");
        assert!(!b.covers(15.0, NodeId::Vehicle(1)), "scoped to the IMU");
        let global = Blackout {
            start: 10.0,
            end: 20.0,
            node: None,
        };
        assert!(global.covers(15.0, NodeId::Vehicle(1)));
        let mut m = FaultModel::default();
        m.blackouts.push(b);
        assert!(m.blacked_out(12.0, NodeId::Imu));
        assert!(!m.blacked_out(25.0, NodeId::Imu));
    }

    #[test]
    fn invalid_blackout_rejected() {
        let mut m = FaultModel::default();
        m.blackouts.push(Blackout {
            start: 5.0,
            end: 5.0,
            node: None,
        });
        assert!(m.validate().is_err());
        m.blackouts[0].end = f64::INFINITY;
        assert!(m.validate().is_err());
    }

    #[test]
    fn bursty_parameterization_is_valid_across_range() {
        for i in 0..=10 {
            let b = BurstLoss::bursty(i as f64 / 10.0);
            b.validate().expect("valid");
        }
    }

    #[test]
    fn degradation_lookup_defaults_to_none() {
        let mut m = FaultModel::default();
        m.degraded.insert(
            NodeId::Vehicle(3),
            NodeDegradation {
                extra_loss: 0.5,
                extra_latency: 0.1,
            },
        );
        assert_eq!(m.degradation(NodeId::Vehicle(3)).extra_loss, 0.5);
        assert_eq!(m.degradation(NodeId::Vehicle(4)).extra_loss, 0.0);
        m.validate().expect("valid");
        m.degraded.insert(
            NodeId::Vehicle(5),
            NodeDegradation {
                extra_loss: 0.0,
                extra_latency: -1.0,
            },
        );
        assert!(m.validate().is_err());
    }
}
