//! Simulated VANET / V2I message substrate.
//!
//! The paper assumes vehicles talk to each other and to the intersection
//! manager over VANET or 5G links with a 30 ms latency and a 1500 ft
//! communication radius (§VI-A, §III). This crate provides that substrate
//! for the simulator:
//!
//! * [`Medium`] — a position-aware message queue: unicast and broadcast
//!   with configurable latency, radius and loss, delivering messages when
//!   the simulation clock passes their arrival time,
//! * [`NetworkStats`] — per-message-class packet accounting, which
//!   regenerates the paper's Fig. 7 (network load).
//!
//! The medium is generic over the payload type; the NWADE layer defines
//! its own message enum and message-class labels.

#![forbid(unsafe_code)]

pub mod fault;
pub mod medium;
pub mod message;
pub mod stats;

pub use fault::{Blackout, BurstLoss, FaultModel, NodeDegradation};
pub use medium::{Medium, MediumConfig};
pub use message::{Delivery, NodeId, Recipient};
pub use stats::NetworkStats;
