//! The position-aware message medium.

use crate::fault::FaultModel;
use crate::message::{Delivery, NodeId, Recipient};
use crate::stats::NetworkStats;
use nwade_geometry::Vec2;
use rand::Rng;
use std::collections::{BinaryHeap, HashMap};

/// Medium configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MediumConfig {
    /// One-way latency in seconds (paper: 30 ms).
    pub latency: f64,
    /// Communication radius in meters (paper: 1500 ft ≈ 457 m).
    pub comm_radius: f64,
    /// Independent per-reception loss probability.
    pub loss_probability: f64,
    /// Injected channel faults; defaults to a clean channel.
    pub faults: FaultModel,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig {
            latency: nwade_geometry::units::paper::NETWORK_LATENCY_S,
            comm_radius: nwade_geometry::units::paper::comm_radius_m(),
            loss_probability: 0.0,
            faults: FaultModel::default(),
        }
    }
}

impl MediumConfig {
    /// Validates the configuration, including the fault model. Finiteness
    /// is checked here so delivery times are always totally ordered and a
    /// malformed config fails at construction, not mid-simulation.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.latency >= 0.0 && self.latency.is_finite()) {
            return Err("latency must be finite and non-negative".into());
        }
        if !(self.comm_radius > 0.0 && self.comm_radius.is_finite()) {
            return Err("communication radius must be finite and positive".into());
        }
        if !(0.0..=1.0).contains(&self.loss_probability) {
            return Err("loss probability must be within [0, 1]".into());
        }
        self.faults.validate()
    }
}

/// An in-flight message (min-heap by delivery time).
#[derive(Debug, Clone)]
struct InFlight<M> {
    deliver_at: f64,
    seq: u64,
    delivery: Delivery<M>,
}

impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap; tie-break on send sequence so equal
        // delivery times pop in send order and runs stay reproducible
        // even under reordering faults. `total_cmp` keeps the ordering
        // total; `MediumConfig::validate` rejects non-finite latencies at
        // construction so NaN never reaches the queue.
        other
            .deliver_at
            .total_cmp(&self.deliver_at)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A simulated radio medium.
///
/// Node positions must be kept current via [`Medium::set_position`];
/// range checks happen at send time (the paper's latency is far below
/// any position change that would matter).
#[derive(Debug, Clone)]
pub struct Medium<M> {
    config: MediumConfig,
    positions: HashMap<NodeId, Vec2>,
    queue: BinaryHeap<InFlight<M>>,
    stats: NetworkStats,
    seq: u64,
    /// Gilbert–Elliott channel state: `true` while in the bad state.
    burst_bad: bool,
}

impl<M: Clone> Medium<M> {
    /// Creates a medium.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    pub fn new(config: MediumConfig) -> Self {
        config.validate().expect("medium config must be valid");
        Medium {
            config,
            positions: HashMap::new(),
            queue: BinaryHeap::new(),
            stats: NetworkStats::new(),
            seq: 0,
            burst_bad: false,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MediumConfig {
        &self.config
    }

    /// Network statistics collected so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Registers or updates a node's position.
    pub fn set_position(&mut self, node: NodeId, position: Vec2) {
        self.positions.insert(node, position);
    }

    /// Removes a node (a vehicle that left the area). In-flight messages
    /// to it are still delivered; future sends no longer reach it.
    pub fn remove_node(&mut self, node: NodeId) {
        self.positions.remove(&node);
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Nodes currently within `radius` of `center`, excluding `exclude`.
    pub fn nodes_within(&self, center: Vec2, radius: f64, exclude: Option<NodeId>) -> Vec<NodeId> {
        let r_sq = radius * radius;
        let mut out: Vec<NodeId> = self
            .positions
            .iter()
            .filter(|(n, p)| Some(**n) != exclude && p.distance_sq(center) <= r_sq)
            .map(|(n, _)| *n)
            .collect();
        out.sort_unstable();
        out
    }

    /// Sends a message at time `now`. Returns the number of recipients it
    /// will reach.
    ///
    /// Unknown senders and out-of-range recipients drop the message (the
    /// drop is counted). Loss is sampled independently per recipient.
    pub fn send<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        to: Recipient,
        class: &'static str,
        payload: M,
        now: f64,
        rng: &mut R,
    ) -> usize {
        let Some(&src) = self.positions.get(&from) else {
            self.stats.record_drop(class);
            return 0;
        };
        if self.config.faults.blacked_out(now, from) {
            // The sender's radio is dark: nothing goes on the air.
            self.stats.record_drop(class);
            return 0;
        }
        self.stats.record_transmission(class);
        let targets: Vec<NodeId> = match to {
            Recipient::Unicast(node) => vec![node],
            Recipient::Broadcast => self.nodes_within(src, self.config.comm_radius, Some(from)),
        };
        let sender_degradation = self.config.faults.degradation(from);
        let mut reached = 0;
        for node in targets {
            let in_range = self
                .positions
                .get(&node)
                .is_some_and(|p| p.distance(src) <= self.config.comm_radius);
            if !in_range || self.config.faults.blacked_out(now, node) {
                self.stats.record_drop(class);
                continue;
            }
            let node_degradation = self.config.faults.degradation(node);
            if self.sample_loss(
                node_degradation.extra_loss,
                sender_degradation.extra_loss,
                rng,
            ) {
                self.stats.record_drop(class);
                continue;
            }
            let base_latency = self.config.latency
                + sender_degradation.extra_latency
                + node_degradation.extra_latency;
            self.enqueue_copy(from, node, class, payload.clone(), now, base_latency, rng);
            if self.config.faults.duplicate_probability > 0.0
                && rng.gen::<f64>() < self.config.faults.duplicate_probability
            {
                self.enqueue_copy(from, node, class, payload.clone(), now, base_latency, rng);
                self.stats.record_duplicate(class);
            }
            self.stats.record_reception(class);
            reached += 1;
        }
        reached
    }

    /// Samples the layered loss processes: base loss, Gilbert–Elliott
    /// burst state, and per-endpoint degradation combine independently.
    fn sample_loss<R: Rng + ?Sized>(
        &mut self,
        receiver_extra: f64,
        sender_extra: f64,
        rng: &mut R,
    ) -> bool {
        let mut pass = 1.0 - self.config.loss_probability;
        if let Some(burst) = self.config.faults.burst {
            if self.burst_bad {
                if rng.gen::<f64>() < burst.exit_bad {
                    self.burst_bad = false;
                }
            } else if rng.gen::<f64>() < burst.enter_bad {
                self.burst_bad = true;
            }
            let burst_loss = if self.burst_bad {
                burst.loss_bad
            } else {
                burst.loss_good
            };
            pass *= 1.0 - burst_loss;
        }
        pass *= (1.0 - receiver_extra) * (1.0 - sender_extra);
        let loss = 1.0 - pass;
        loss > 0.0 && rng.gen::<f64>() < loss
    }

    /// Enqueues one delivered copy, sampling jitter and corruption.
    fn enqueue_copy<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        to: NodeId,
        class: &'static str,
        payload: M,
        now: f64,
        base_latency: f64,
        rng: &mut R,
    ) {
        let jitter = if self.config.faults.latency_jitter > 0.0 {
            rng.gen::<f64>() * self.config.faults.latency_jitter
        } else {
            0.0
        };
        let corrupted = self.config.faults.corruption_probability > 0.0
            && rng.gen::<f64>() < self.config.faults.corruption_probability;
        if corrupted {
            self.stats.record_corruption(class);
        }
        let deliver_at = now + base_latency + jitter;
        self.seq += 1;
        self.queue.push(InFlight {
            deliver_at,
            seq: self.seq,
            delivery: Delivery {
                from,
                to,
                at: deliver_at,
                class,
                corrupted,
                payload,
            },
        });
    }

    /// Pops every message whose delivery time is `<= now`, in delivery
    /// order.
    pub fn deliver_due(&mut self, now: f64) -> Vec<Delivery<M>> {
        let mut out = Vec::new();
        while let Some(top) = self.queue.peek() {
            if top.deliver_at > now {
                break;
            }
            out.push(self.queue.pop().expect("peeked").delivery);
        }
        out
    }

    /// Number of messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Order-independent digest of the in-flight queue: folds every
    /// pending message's delivery time and send sequence (plus the
    /// sequence counter itself) with commutative mixing, so two media
    /// holding the same set of scheduled deliveries digest equal no
    /// matter how their heaps are internally arranged. Payloads are
    /// deliberately excluded — `(seq, deliver_at)` uniquely identifies
    /// a send in a deterministic run. Used by forensic replay to check
    /// a resimulated world against the original, tick by tick.
    pub fn flight_digest(&self) -> u64 {
        let mut acc = self.seq ^ (self.positions.len() as u64).rotate_left(17);
        for entry in self.queue.iter() {
            let mut h = 0xcbf29ce484222325u64;
            for byte in entry
                .deliver_at
                .to_bits()
                .to_be_bytes()
                .iter()
                .chain(entry.seq.to_be_bytes().iter())
            {
                h ^= u64::from(*byte);
                h = h.wrapping_mul(0x100000001b3);
            }
            acc = acc.wrapping_add(h);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn medium() -> Medium<&'static str> {
        let mut m = Medium::new(MediumConfig {
            latency: 0.030,
            comm_radius: 100.0,
            loss_probability: 0.0,
            faults: Default::default(),
        });
        m.set_position(NodeId::Imu, Vec2::ZERO);
        m.set_position(NodeId::Vehicle(1), Vec2::new(50.0, 0.0));
        m.set_position(NodeId::Vehicle(2), Vec2::new(90.0, 0.0));
        m.set_position(NodeId::Vehicle(3), Vec2::new(500.0, 0.0));
        m
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn unicast_within_range_delivers_after_latency() {
        let mut m = medium();
        let n = m.send(
            NodeId::Imu,
            Recipient::Unicast(NodeId::Vehicle(1)),
            "plan",
            "hello",
            10.0,
            &mut rng(),
        );
        assert_eq!(n, 1);
        assert!(m.deliver_due(10.02).is_empty(), "too early");
        let due = m.deliver_due(10.03);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].payload, "hello");
        assert_eq!(due[0].from, NodeId::Imu);
        assert_eq!(due[0].to, NodeId::Vehicle(1));
        assert!((due[0].at - 10.03).abs() < 1e-12);
    }

    #[test]
    fn unicast_out_of_range_drops() {
        let mut m = medium();
        let n = m.send(
            NodeId::Imu,
            Recipient::Unicast(NodeId::Vehicle(3)),
            "plan",
            "x",
            0.0,
            &mut rng(),
        );
        assert_eq!(n, 0);
        assert_eq!(m.stats().class("plan").dropped, 1);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn broadcast_reaches_only_nodes_in_radius() {
        let mut m = medium();
        let n = m.send(
            NodeId::Imu,
            Recipient::Broadcast,
            "block",
            "b",
            0.0,
            &mut rng(),
        );
        assert_eq!(n, 2, "vehicles 1 and 2 are within 100 m");
        assert_eq!(m.stats().class("block").transmissions, 1);
        assert_eq!(m.stats().class("block").receptions, 2);
        let due = m.deliver_due(1.0);
        let mut tos: Vec<_> = due.iter().map(|d| d.to).collect();
        tos.sort();
        assert_eq!(tos, vec![NodeId::Vehicle(1), NodeId::Vehicle(2)]);
    }

    #[test]
    fn broadcast_excludes_sender() {
        let mut m = medium();
        m.send(
            NodeId::Vehicle(1),
            Recipient::Broadcast,
            "report",
            "r",
            0.0,
            &mut rng(),
        );
        let due = m.deliver_due(1.0);
        assert!(due.iter().all(|d| d.to != NodeId::Vehicle(1)));
    }

    #[test]
    fn unknown_sender_drops() {
        let mut m = medium();
        let n = m.send(
            NodeId::Vehicle(99),
            Recipient::Broadcast,
            "report",
            "r",
            0.0,
            &mut rng(),
        );
        assert_eq!(n, 0);
        assert_eq!(m.stats().class("report").dropped, 1);
    }

    #[test]
    fn removed_node_no_longer_reachable() {
        let mut m = medium();
        m.remove_node(NodeId::Vehicle(1));
        assert_eq!(m.node_count(), 3);
        let n = m.send(
            NodeId::Imu,
            Recipient::Unicast(NodeId::Vehicle(1)),
            "plan",
            "x",
            0.0,
            &mut rng(),
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn deliveries_come_out_in_time_order() {
        let mut m = medium();
        let mut r = rng();
        for t in [5.0, 1.0, 3.0] {
            m.send(
                NodeId::Imu,
                Recipient::Unicast(NodeId::Vehicle(1)),
                "plan",
                "x",
                t,
                &mut r,
            );
        }
        let due = m.deliver_due(100.0);
        assert_eq!(due.len(), 3);
        assert!(due.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn total_loss_drops_everything() {
        let mut m = Medium::new(MediumConfig {
            latency: 0.03,
            comm_radius: 100.0,
            loss_probability: 1.0,
            faults: Default::default(),
        });
        m.set_position(NodeId::Imu, Vec2::ZERO);
        m.set_position(NodeId::Vehicle(1), Vec2::new(10.0, 0.0));
        let n = m.send(
            NodeId::Imu,
            Recipient::Broadcast,
            "block",
            "b",
            0.0,
            &mut rng(),
        );
        assert_eq!(n, 0);
        assert_eq!(m.stats().class("block").dropped, 1);
    }

    #[test]
    fn partial_loss_drops_some() {
        let mut m = Medium::new(MediumConfig {
            latency: 0.03,
            comm_radius: 1000.0,
            loss_probability: 0.5,
            faults: Default::default(),
        });
        m.set_position(NodeId::Imu, Vec2::ZERO);
        for i in 0..200 {
            m.set_position(NodeId::Vehicle(i), Vec2::new(i as f64, 0.0));
        }
        let reached = m.send(
            NodeId::Imu,
            Recipient::Broadcast,
            "block",
            "b",
            0.0,
            &mut rng(),
        );
        assert!(reached > 50 && reached < 150, "reached {reached}");
    }

    #[test]
    fn nodes_within_sorted_and_excluding() {
        let m = medium();
        let nodes = m.nodes_within(Vec2::ZERO, 95.0, Some(NodeId::Imu));
        assert_eq!(nodes, vec![NodeId::Vehicle(1), NodeId::Vehicle(2)]);
    }

    #[test]
    #[should_panic(expected = "valid")]
    fn invalid_config_panics() {
        let _ = Medium::<()>::new(MediumConfig {
            latency: -1.0,
            comm_radius: 100.0,
            loss_probability: 0.0,
            faults: Default::default(),
        });
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_latency_rejected_at_construction() {
        let _ = Medium::<()>::new(MediumConfig {
            latency: f64::NAN,
            comm_radius: 100.0,
            loss_probability: 0.0,
            faults: Default::default(),
        });
    }

    fn faulty_medium(faults: crate::fault::FaultModel) -> Medium<&'static str> {
        let mut m = Medium::new(MediumConfig {
            latency: 0.030,
            comm_radius: 100.0,
            loss_probability: 0.0,
            faults,
        });
        m.set_position(NodeId::Imu, Vec2::ZERO);
        m.set_position(NodeId::Vehicle(1), Vec2::new(50.0, 0.0));
        m
    }

    #[test]
    fn duplication_injects_extra_copies() {
        let mut m = faulty_medium(crate::fault::FaultModel {
            duplicate_probability: 1.0,
            ..Default::default()
        });
        let reached = m.send(
            NodeId::Imu,
            Recipient::Unicast(NodeId::Vehicle(1)),
            "plan",
            "p",
            0.0,
            &mut rng(),
        );
        assert_eq!(reached, 1, "duplicates do not inflate reach");
        let due = m.deliver_due(1.0);
        assert_eq!(due.len(), 2, "recipient sees two copies");
        assert_eq!(m.stats().class("plan").receptions, 1);
        assert_eq!(m.stats().class("plan").duplicated, 1);
    }

    #[test]
    fn corruption_flags_copies_and_counts() {
        let mut m = faulty_medium(crate::fault::FaultModel {
            corruption_probability: 1.0,
            ..Default::default()
        });
        m.send(
            NodeId::Imu,
            Recipient::Unicast(NodeId::Vehicle(1)),
            "block",
            "b",
            0.0,
            &mut rng(),
        );
        let due = m.deliver_due(1.0);
        assert_eq!(due.len(), 1);
        assert!(due[0].corrupted);
        assert_eq!(m.stats().class("block").corrupted, 1);
        // A clean channel never flags.
        let mut clean = medium();
        clean.send(
            NodeId::Imu,
            Recipient::Unicast(NodeId::Vehicle(1)),
            "block",
            "b",
            0.0,
            &mut rng(),
        );
        assert!(clean.deliver_due(1.0).iter().all(|d| !d.corrupted));
    }

    #[test]
    fn jitter_reorders_but_deliveries_stay_time_ordered() {
        let mut m = faulty_medium(crate::fault::FaultModel {
            latency_jitter: 0.5,
            ..Default::default()
        });
        let mut r = rng();
        for _ in 0..20 {
            m.send(
                NodeId::Imu,
                Recipient::Unicast(NodeId::Vehicle(1)),
                "plan",
                "x",
                0.0,
                &mut r,
            );
        }
        let due = m.deliver_due(10.0);
        assert_eq!(due.len(), 20);
        assert!(due.windows(2).all(|w| w[0].at <= w[1].at));
        // Jitter actually spread the arrivals.
        assert!(due.last().expect("due").at - due[0].at > 1e-6);
    }

    #[test]
    fn equal_delivery_times_pop_in_send_order() {
        let mut m = medium();
        let mut r = rng();
        for _ in 0..10 {
            m.send(
                NodeId::Imu,
                Recipient::Unicast(NodeId::Vehicle(1)),
                "plan",
                "x",
                0.0,
                &mut r,
            );
        }
        // All ten share one delivery instant; order must be send order.
        let due = m.deliver_due(1.0);
        assert_eq!(due.len(), 10);
        assert!(due.windows(2).all(|w| w[0].at == w[1].at));
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let run = || {
            let mut m = faulty_medium(crate::fault::FaultModel {
                duplicate_probability: 0.4,
                latency_jitter: 0.3,
                corruption_probability: 0.3,
                burst: Some(crate::fault::BurstLoss::bursty(0.2)),
                ..Default::default()
            });
            let mut r = StdRng::seed_from_u64(99);
            for i in 0..50 {
                m.send(
                    NodeId::Imu,
                    Recipient::Unicast(NodeId::Vehicle(1)),
                    "plan",
                    "x",
                    i as f64 * 0.01,
                    &mut r,
                );
            }
            m.deliver_due(100.0)
                .iter()
                .map(|d| (d.at.to_bits(), d.corrupted))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "identical seeds give identical schedules");
    }

    #[test]
    fn saturated_burst_loses_everything() {
        let mut m = faulty_medium(crate::fault::FaultModel {
            burst: Some(crate::fault::BurstLoss {
                enter_bad: 1.0,
                exit_bad: 0.0,
                loss_good: 0.0,
                loss_bad: 1.0,
            }),
            ..Default::default()
        });
        let mut r = rng();
        for _ in 0..10 {
            let n = m.send(
                NodeId::Imu,
                Recipient::Unicast(NodeId::Vehicle(1)),
                "plan",
                "x",
                0.0,
                &mut r,
            );
            assert_eq!(n, 0);
        }
        assert_eq!(m.stats().class("plan").dropped, 10);
    }

    #[test]
    fn blackout_silences_sender_and_receiver() {
        let mut m = faulty_medium(crate::fault::FaultModel {
            blackouts: vec![crate::fault::Blackout {
                start: 10.0,
                end: 20.0,
                node: Some(NodeId::Imu),
            }],
            ..Default::default()
        });
        let mut r = rng();
        // IMU cannot send during its blackout.
        let n = m.send(
            NodeId::Imu,
            Recipient::Unicast(NodeId::Vehicle(1)),
            "plan",
            "x",
            15.0,
            &mut r,
        );
        assert_eq!(n, 0);
        // Nor receive.
        let n = m.send(
            NodeId::Vehicle(1),
            Recipient::Unicast(NodeId::Imu),
            "report",
            "r",
            15.0,
            &mut r,
        );
        assert_eq!(n, 0);
        // Outside the window everything flows again.
        let n = m.send(
            NodeId::Imu,
            Recipient::Unicast(NodeId::Vehicle(1)),
            "plan",
            "x",
            25.0,
            &mut r,
        );
        assert_eq!(n, 1);
    }

    #[test]
    fn degraded_node_suffers_extra_loss_and_latency() {
        let mut degraded = std::collections::BTreeMap::new();
        degraded.insert(
            NodeId::Vehicle(1),
            crate::fault::NodeDegradation {
                extra_loss: 1.0,
                extra_latency: 0.0,
            },
        );
        let mut m = faulty_medium(crate::fault::FaultModel {
            degraded,
            ..Default::default()
        });
        let n = m.send(
            NodeId::Imu,
            Recipient::Unicast(NodeId::Vehicle(1)),
            "plan",
            "x",
            0.0,
            &mut rng(),
        );
        assert_eq!(n, 0, "fully degraded node receives nothing");

        let mut degraded = std::collections::BTreeMap::new();
        degraded.insert(
            NodeId::Vehicle(1),
            crate::fault::NodeDegradation {
                extra_loss: 0.0,
                extra_latency: 1.0,
            },
        );
        let mut m = faulty_medium(crate::fault::FaultModel {
            degraded,
            ..Default::default()
        });
        m.send(
            NodeId::Imu,
            Recipient::Unicast(NodeId::Vehicle(1)),
            "plan",
            "x",
            0.0,
            &mut rng(),
        );
        assert!(m.deliver_due(1.0).is_empty(), "still in flight");
        let due = m.deliver_due(1.04);
        assert_eq!(due.len(), 1, "arrives after latency + degradation");
    }
}
