//! The position-aware message medium.

use crate::message::{Delivery, NodeId, Recipient};
use crate::stats::NetworkStats;
use nwade_geometry::Vec2;
use rand::Rng;
use std::collections::{BinaryHeap, HashMap};

/// Medium configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MediumConfig {
    /// One-way latency in seconds (paper: 30 ms).
    pub latency: f64,
    /// Communication radius in meters (paper: 1500 ft ≈ 457 m).
    pub comm_radius: f64,
    /// Independent per-reception loss probability.
    pub loss_probability: f64,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig {
            latency: nwade_geometry::units::paper::NETWORK_LATENCY_S,
            comm_radius: nwade_geometry::units::paper::comm_radius_m(),
            loss_probability: 0.0,
        }
    }
}

impl MediumConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.latency >= 0.0) {
            return Err("latency must be non-negative".into());
        }
        if !(self.comm_radius > 0.0) {
            return Err("communication radius must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.loss_probability) {
            return Err("loss probability must be within [0, 1]".into());
        }
        Ok(())
    }
}

/// An in-flight message (min-heap by delivery time).
#[derive(Debug, Clone)]
struct InFlight<M> {
    deliver_at: f64,
    seq: u64,
    delivery: Delivery<M>,
}

impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap; tie-break on sequence for determinism.
        other
            .deliver_at
            .partial_cmp(&self.deliver_at)
            .expect("finite delivery times")
            .then(other.seq.cmp(&self.seq))
    }
}

/// A simulated radio medium.
///
/// Node positions must be kept current via [`Medium::set_position`];
/// range checks happen at send time (the paper's latency is far below
/// any position change that would matter).
#[derive(Debug)]
pub struct Medium<M> {
    config: MediumConfig,
    positions: HashMap<NodeId, Vec2>,
    queue: BinaryHeap<InFlight<M>>,
    stats: NetworkStats,
    seq: u64,
}

impl<M: Clone> Medium<M> {
    /// Creates a medium.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    pub fn new(config: MediumConfig) -> Self {
        config.validate().expect("medium config must be valid");
        Medium {
            config,
            positions: HashMap::new(),
            queue: BinaryHeap::new(),
            stats: NetworkStats::new(),
            seq: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MediumConfig {
        &self.config
    }

    /// Network statistics collected so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Registers or updates a node's position.
    pub fn set_position(&mut self, node: NodeId, position: Vec2) {
        self.positions.insert(node, position);
    }

    /// Removes a node (a vehicle that left the area). In-flight messages
    /// to it are still delivered; future sends no longer reach it.
    pub fn remove_node(&mut self, node: NodeId) {
        self.positions.remove(&node);
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Nodes currently within `radius` of `center`, excluding `exclude`.
    pub fn nodes_within(&self, center: Vec2, radius: f64, exclude: Option<NodeId>) -> Vec<NodeId> {
        let r_sq = radius * radius;
        let mut out: Vec<NodeId> = self
            .positions
            .iter()
            .filter(|(n, p)| Some(**n) != exclude && p.distance_sq(center) <= r_sq)
            .map(|(n, _)| *n)
            .collect();
        out.sort_unstable();
        out
    }

    /// Sends a message at time `now`. Returns the number of recipients it
    /// will reach.
    ///
    /// Unknown senders and out-of-range recipients drop the message (the
    /// drop is counted). Loss is sampled independently per recipient.
    pub fn send<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        to: Recipient,
        class: &'static str,
        payload: M,
        now: f64,
        rng: &mut R,
    ) -> usize {
        let Some(&src) = self.positions.get(&from) else {
            self.stats.record_drop(class);
            return 0;
        };
        self.stats.record_transmission(class);
        let targets: Vec<NodeId> = match to {
            Recipient::Unicast(node) => vec![node],
            Recipient::Broadcast => {
                self.nodes_within(src, self.config.comm_radius, Some(from))
            }
        };
        let mut reached = 0;
        for node in targets {
            let in_range = self
                .positions
                .get(&node)
                .is_some_and(|p| p.distance(src) <= self.config.comm_radius);
            let lost = self.config.loss_probability > 0.0
                && rng.gen::<f64>() < self.config.loss_probability;
            if !in_range || lost {
                self.stats.record_drop(class);
                continue;
            }
            self.seq += 1;
            self.queue.push(InFlight {
                deliver_at: now + self.config.latency,
                seq: self.seq,
                delivery: Delivery {
                    from,
                    to: node,
                    at: now + self.config.latency,
                    class,
                    payload: payload.clone(),
                },
            });
            self.stats.record_reception(class);
            reached += 1;
        }
        reached
    }

    /// Pops every message whose delivery time is `<= now`, in delivery
    /// order.
    pub fn deliver_due(&mut self, now: f64) -> Vec<Delivery<M>> {
        let mut out = Vec::new();
        while let Some(top) = self.queue.peek() {
            if top.deliver_at > now {
                break;
            }
            out.push(self.queue.pop().expect("peeked").delivery);
        }
        out
    }

    /// Number of messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn medium() -> Medium<&'static str> {
        let mut m = Medium::new(MediumConfig {
            latency: 0.030,
            comm_radius: 100.0,
            loss_probability: 0.0,
        });
        m.set_position(NodeId::Imu, Vec2::ZERO);
        m.set_position(NodeId::Vehicle(1), Vec2::new(50.0, 0.0));
        m.set_position(NodeId::Vehicle(2), Vec2::new(90.0, 0.0));
        m.set_position(NodeId::Vehicle(3), Vec2::new(500.0, 0.0));
        m
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn unicast_within_range_delivers_after_latency() {
        let mut m = medium();
        let n = m.send(
            NodeId::Imu,
            Recipient::Unicast(NodeId::Vehicle(1)),
            "plan",
            "hello",
            10.0,
            &mut rng(),
        );
        assert_eq!(n, 1);
        assert!(m.deliver_due(10.02).is_empty(), "too early");
        let due = m.deliver_due(10.03);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].payload, "hello");
        assert_eq!(due[0].from, NodeId::Imu);
        assert_eq!(due[0].to, NodeId::Vehicle(1));
        assert!((due[0].at - 10.03).abs() < 1e-12);
    }

    #[test]
    fn unicast_out_of_range_drops() {
        let mut m = medium();
        let n = m.send(
            NodeId::Imu,
            Recipient::Unicast(NodeId::Vehicle(3)),
            "plan",
            "x",
            0.0,
            &mut rng(),
        );
        assert_eq!(n, 0);
        assert_eq!(m.stats().class("plan").dropped, 1);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn broadcast_reaches_only_nodes_in_radius() {
        let mut m = medium();
        let n = m.send(
            NodeId::Imu,
            Recipient::Broadcast,
            "block",
            "b",
            0.0,
            &mut rng(),
        );
        assert_eq!(n, 2, "vehicles 1 and 2 are within 100 m");
        assert_eq!(m.stats().class("block").transmissions, 1);
        assert_eq!(m.stats().class("block").receptions, 2);
        let due = m.deliver_due(1.0);
        let mut tos: Vec<_> = due.iter().map(|d| d.to).collect();
        tos.sort();
        assert_eq!(tos, vec![NodeId::Vehicle(1), NodeId::Vehicle(2)]);
    }

    #[test]
    fn broadcast_excludes_sender() {
        let mut m = medium();
        m.send(
            NodeId::Vehicle(1),
            Recipient::Broadcast,
            "report",
            "r",
            0.0,
            &mut rng(),
        );
        let due = m.deliver_due(1.0);
        assert!(due.iter().all(|d| d.to != NodeId::Vehicle(1)));
    }

    #[test]
    fn unknown_sender_drops() {
        let mut m = medium();
        let n = m.send(
            NodeId::Vehicle(99),
            Recipient::Broadcast,
            "report",
            "r",
            0.0,
            &mut rng(),
        );
        assert_eq!(n, 0);
        assert_eq!(m.stats().class("report").dropped, 1);
    }

    #[test]
    fn removed_node_no_longer_reachable() {
        let mut m = medium();
        m.remove_node(NodeId::Vehicle(1));
        assert_eq!(m.node_count(), 3);
        let n = m.send(
            NodeId::Imu,
            Recipient::Unicast(NodeId::Vehicle(1)),
            "plan",
            "x",
            0.0,
            &mut rng(),
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn deliveries_come_out_in_time_order() {
        let mut m = medium();
        let mut r = rng();
        for t in [5.0, 1.0, 3.0] {
            m.send(
                NodeId::Imu,
                Recipient::Unicast(NodeId::Vehicle(1)),
                "plan",
                "x",
                t,
                &mut r,
            );
        }
        let due = m.deliver_due(100.0);
        assert_eq!(due.len(), 3);
        assert!(due.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn total_loss_drops_everything() {
        let mut m = Medium::new(MediumConfig {
            latency: 0.03,
            comm_radius: 100.0,
            loss_probability: 1.0,
        });
        m.set_position(NodeId::Imu, Vec2::ZERO);
        m.set_position(NodeId::Vehicle(1), Vec2::new(10.0, 0.0));
        let n = m.send(
            NodeId::Imu,
            Recipient::Broadcast,
            "block",
            "b",
            0.0,
            &mut rng(),
        );
        assert_eq!(n, 0);
        assert_eq!(m.stats().class("block").dropped, 1);
    }

    #[test]
    fn partial_loss_drops_some() {
        let mut m = Medium::new(MediumConfig {
            latency: 0.03,
            comm_radius: 1000.0,
            loss_probability: 0.5,
        });
        m.set_position(NodeId::Imu, Vec2::ZERO);
        for i in 0..200 {
            m.set_position(NodeId::Vehicle(i), Vec2::new(i as f64, 0.0));
        }
        let reached = m.send(
            NodeId::Imu,
            Recipient::Broadcast,
            "block",
            "b",
            0.0,
            &mut rng(),
        );
        assert!(reached > 50 && reached < 150, "reached {reached}");
    }

    #[test]
    fn nodes_within_sorted_and_excluding() {
        let m = medium();
        let nodes = m.nodes_within(Vec2::ZERO, 95.0, Some(NodeId::Imu));
        assert_eq!(nodes, vec![NodeId::Vehicle(1), NodeId::Vehicle(2)]);
    }

    #[test]
    #[should_panic(expected = "valid")]
    fn invalid_config_panics() {
        let _ = Medium::<()>::new(MediumConfig {
            latency: -1.0,
            comm_radius: 100.0,
            loss_probability: 0.0,
        });
    }
}
