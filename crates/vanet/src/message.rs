//! Network node identities and message addressing.

use std::fmt;

/// A network participant: the intersection management unit or a vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// The intersection manager (road-side unit).
    Imu,
    /// A vehicle, identified by its simulation id.
    Vehicle(u64),
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Imu => f.write_str("IMU"),
            NodeId::Vehicle(v) => write!(f, "V{v}"),
        }
    }
}

/// Message addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recipient {
    /// A single node.
    Unicast(NodeId),
    /// Every node within communication range of the sender.
    Broadcast,
}

/// A message delivered to a node.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery<M> {
    /// Originating node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Simulation time at which the message arrives.
    pub at: f64,
    /// Message-class label (for packet accounting).
    pub class: &'static str,
    /// Whether the channel corrupted this copy in transit (fault
    /// injection); the receiving layer must mangle the payload so
    /// signature / hash verification fails.
    pub corrupted: bool,
    /// The payload.
    pub payload: M,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_display() {
        assert_eq!(NodeId::Imu.to_string(), "IMU");
        assert_eq!(NodeId::Vehicle(7).to_string(), "V7");
    }

    #[test]
    fn node_ordering_groups_imu_first() {
        let mut v = vec![NodeId::Vehicle(2), NodeId::Imu, NodeId::Vehicle(0)];
        v.sort();
        assert_eq!(v, vec![NodeId::Imu, NodeId::Vehicle(0), NodeId::Vehicle(2)]);
    }
}
