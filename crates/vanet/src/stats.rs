//! Packet accounting per message class (regenerates Fig. 7).

use std::collections::BTreeMap;

/// Counters for one message class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounters {
    /// Radio transmissions (one per unicast / one per broadcast).
    pub transmissions: u64,
    /// Receptions (one per reached recipient).
    pub receptions: u64,
    /// Messages lost to range or the loss model.
    pub dropped: u64,
    /// Extra copies injected by the duplication fault (not counted as
    /// receptions).
    pub duplicated: u64,
    /// Delivered copies flagged as corrupted by the fault model.
    pub corrupted: u64,
}

/// Per-class network statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkStats {
    classes: BTreeMap<&'static str, ClassCounters>,
}

impl NetworkStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        NetworkStats::default()
    }

    pub(crate) fn record_transmission(&mut self, class: &'static str) {
        self.classes.entry(class).or_default().transmissions += 1;
    }

    pub(crate) fn record_reception(&mut self, class: &'static str) {
        self.classes.entry(class).or_default().receptions += 1;
    }

    pub(crate) fn record_drop(&mut self, class: &'static str) {
        self.classes.entry(class).or_default().dropped += 1;
    }

    pub(crate) fn record_duplicate(&mut self, class: &'static str) {
        self.classes.entry(class).or_default().duplicated += 1;
    }

    pub(crate) fn record_corruption(&mut self, class: &'static str) {
        self.classes.entry(class).or_default().corrupted += 1;
    }

    /// Counters for one class (zeros when the class never appeared).
    pub fn class(&self, class: &str) -> ClassCounters {
        self.classes.get(class).copied().unwrap_or_default()
    }

    /// Iterates over `(class, counters)` in class-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, ClassCounters)> + '_ {
        self.classes.iter().map(|(k, v)| (*k, *v))
    }

    /// Total packets on the air (transmissions across all classes).
    pub fn total_transmissions(&self) -> u64 {
        self.classes.values().map(|c| c.transmissions).sum()
    }

    /// Total receptions across all classes.
    pub fn total_receptions(&self) -> u64 {
        self.classes.values().map(|c| c.receptions).sum()
    }

    /// Total drops across all classes.
    pub fn total_dropped(&self) -> u64 {
        self.classes.values().map(|c| c.dropped).sum()
    }

    /// Total duplicated copies across all classes.
    pub fn total_duplicated(&self) -> u64 {
        self.classes.values().map(|c| c.duplicated).sum()
    }

    /// Total corrupted copies across all classes.
    pub fn total_corrupted(&self) -> u64 {
        self.classes.values().map(|c| c.corrupted).sum()
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        self.classes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = NetworkStats::new();
        s.record_transmission("block");
        s.record_reception("block");
        s.record_reception("block");
        s.record_drop("report");
        assert_eq!(s.class("block").transmissions, 1);
        assert_eq!(s.class("block").receptions, 2);
        assert_eq!(s.class("report").dropped, 1);
        assert_eq!(s.class("unknown"), ClassCounters::default());
        assert_eq!(s.total_transmissions(), 1);
        assert_eq!(s.total_receptions(), 2);
        assert_eq!(s.total_dropped(), 1);
    }

    #[test]
    fn iter_is_sorted_by_class() {
        let mut s = NetworkStats::new();
        s.record_transmission("zeta");
        s.record_transmission("alpha");
        let classes: Vec<_> = s.iter().map(|(c, _)| c).collect();
        assert_eq!(classes, vec!["alpha", "zeta"]);
    }

    #[test]
    fn reset_clears() {
        let mut s = NetworkStats::new();
        s.record_transmission("x");
        s.reset();
        assert_eq!(s.total_transmissions(), 0);
    }
}
