//! Property tests over the medium's public API.

use nwade_geometry::Vec2;
use nwade_vanet::{FaultModel, Medium, MediumConfig, NodeId, Recipient};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `sends` through a medium with the given fault model and returns
/// the full delivery trace (payload dropped — it is `()`).
fn trace(
    faults: FaultModel,
    sends: &[(u64, u64, f64)],
    seed: u64,
) -> Vec<(NodeId, NodeId, f64, bool)> {
    let mut medium = Medium::new(MediumConfig {
        latency: 0.03,
        comm_radius: 1_000.0,
        loss_probability: 0.0,
        faults,
    });
    for i in 0..10u64 {
        medium.set_position(NodeId::Vehicle(i), Vec2::new(i as f64 * 10.0, 0.0));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for (from, to, t) in sends {
        medium.send(
            NodeId::Vehicle(*from),
            Recipient::Unicast(NodeId::Vehicle(*to)),
            "test",
            (),
            *t,
            &mut rng,
        );
    }
    medium
        .deliver_due(1e9)
        .into_iter()
        .map(|d| (d.from, d.to, d.at, d.corrupted))
        .collect()
}

proptest! {
    /// Deliveries always come out in non-decreasing time order and every
    /// reception is accounted once.
    #[test]
    fn deliveries_ordered_and_accounted(
        sends in proptest::collection::vec(
            (0u64..10, 0u64..10, 0.0..100.0f64), 1..60),
    ) {
        let mut medium = Medium::new(MediumConfig {
            latency: 0.03,
            comm_radius: 1_000.0,
            loss_probability: 0.0,
            faults: Default::default(),
        });
        for i in 0..10u64 {
            medium.set_position(NodeId::Vehicle(i), Vec2::new(i as f64 * 10.0, 0.0));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut expected = 0u64;
        for (from, to, t) in &sends {
            let n = medium.send(
                NodeId::Vehicle(*from),
                Recipient::Unicast(NodeId::Vehicle(*to)),
                "test",
                (),
                *t,
                &mut rng,
            );
            expected += n as u64;
        }
        let due = medium.deliver_due(1e9);
        prop_assert_eq!(due.len() as u64, expected);
        prop_assert_eq!(medium.stats().class("test").receptions, expected);
        for w in due.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        prop_assert_eq!(medium.in_flight(), 0);
    }

    /// Broadcast reach never exceeds the node count minus the sender and
    /// always matches the geometric neighbourhood.
    #[test]
    fn broadcast_reach_matches_geometry(
        positions in proptest::collection::vec((-600.0..600.0f64, -600.0..600.0f64), 2..30),
        radius in 50.0..800.0f64,
    ) {
        let mut medium = Medium::new(MediumConfig {
            latency: 0.03,
            comm_radius: radius,
            loss_probability: 0.0,
            faults: Default::default(),
        });
        for (i, (x, y)) in positions.iter().enumerate() {
            medium.set_position(NodeId::Vehicle(i as u64), Vec2::new(*x, *y));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let sender = Vec2::new(positions[0].0, positions[0].1);
        let reached = medium.send(
            NodeId::Vehicle(0),
            Recipient::Broadcast,
            "test",
            (),
            0.0,
            &mut rng,
        );
        let expected = positions[1..]
            .iter()
            .filter(|(x, y)| Vec2::new(*x, *y).distance(sender) <= radius)
            .count();
        prop_assert_eq!(reached, expected);
    }

    /// Under any fault intensity, delivery is still deterministic (same
    /// seed → identical trace) and time-ordered, even though duplication
    /// and jitter reshuffle copies internally.
    #[test]
    fn faulty_medium_is_deterministic_and_time_ordered(
        intensity in 0.0..1.0f64,
        seed in 0u64..1_000,
        sends in proptest::collection::vec(
            (0u64..10, 0u64..10, 0.0..100.0f64), 1..40),
    ) {
        let a = trace(FaultModel::at_intensity(intensity), &sends, seed);
        let b = trace(FaultModel::at_intensity(intensity), &sends, seed);
        prop_assert_eq!(&a, &b, "identical seeds must replay identically");
        for w in a.windows(2) {
            prop_assert!(w[0].2 <= w[1].2, "deliveries sorted by arrival time");
        }
    }

    /// With corruption probability 1 every surviving copy arrives flagged
    /// corrupted — the flag is never silently dropped on any path
    /// (duplicated copies included).
    #[test]
    fn total_corruption_flags_every_delivery(
        seed in 0u64..1_000,
        duplicate in 0.0..1.0f64,
        sends in proptest::collection::vec(
            (0u64..10, 0u64..10, 0.0..100.0f64), 1..40),
    ) {
        let mut faults = FaultModel::default();
        faults.corruption_probability = 1.0;
        faults.duplicate_probability = duplicate;
        let t = trace(faults, &sends, seed);
        prop_assert!(!t.is_empty());
        prop_assert!(t.iter().all(|d| d.3), "every copy flagged corrupted");
    }

    /// A total blackout covering the whole send window delivers nothing;
    /// outside it the channel behaves normally.
    #[test]
    fn blackout_silences_exactly_its_window(
        seed in 0u64..1_000,
        sends in proptest::collection::vec(
            (0u64..10, 0u64..10, 0.0..100.0f64), 1..40),
    ) {
        let mut faults = FaultModel::default();
        faults.blackouts.push(nwade_vanet::Blackout {
            start: 0.0,
            end: 100.0,
            node: None,
        });
        prop_assert!(trace(faults, &sends, seed).is_empty());
        let mut scoped = FaultModel::default();
        scoped.blackouts.push(nwade_vanet::Blackout {
            start: 200.0,
            end: 300.0,
            node: None,
        });
        let t = trace(scoped, &sends, seed);
        prop_assert_eq!(t.len(), sends.len(), "blackout outside window is inert");
    }
}
