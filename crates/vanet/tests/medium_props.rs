//! Property tests over the medium's public API.

use nwade_geometry::Vec2;
use nwade_vanet::{Medium, MediumConfig, NodeId, Recipient};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Deliveries always come out in non-decreasing time order and every
    /// reception is accounted once.
    #[test]
    fn deliveries_ordered_and_accounted(
        sends in proptest::collection::vec(
            (0u64..10, 0u64..10, 0.0..100.0f64), 1..60),
    ) {
        let mut medium = Medium::new(MediumConfig {
            latency: 0.03,
            comm_radius: 1_000.0,
            loss_probability: 0.0,
        });
        for i in 0..10u64 {
            medium.set_position(NodeId::Vehicle(i), Vec2::new(i as f64 * 10.0, 0.0));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut expected = 0u64;
        for (from, to, t) in &sends {
            let n = medium.send(
                NodeId::Vehicle(*from),
                Recipient::Unicast(NodeId::Vehicle(*to)),
                "test",
                (),
                *t,
                &mut rng,
            );
            expected += n as u64;
        }
        let due = medium.deliver_due(1e9);
        prop_assert_eq!(due.len() as u64, expected);
        prop_assert_eq!(medium.stats().class("test").receptions, expected);
        for w in due.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
        prop_assert_eq!(medium.in_flight(), 0);
    }

    /// Broadcast reach never exceeds the node count minus the sender and
    /// always matches the geometric neighbourhood.
    #[test]
    fn broadcast_reach_matches_geometry(
        positions in proptest::collection::vec((-600.0..600.0f64, -600.0..600.0f64), 2..30),
        radius in 50.0..800.0f64,
    ) {
        let mut medium = Medium::new(MediumConfig {
            latency: 0.03,
            comm_radius: radius,
            loss_probability: 0.0,
        });
        for (i, (x, y)) in positions.iter().enumerate() {
            medium.set_position(NodeId::Vehicle(i as u64), Vec2::new(*x, *y));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let sender = Vec2::new(positions[0].0, positions[0].1);
        let reached = medium.send(
            NodeId::Vehicle(0),
            Recipient::Broadcast,
            "test",
            (),
            0.0,
            &mut rng,
        );
        let expected = positions[1..]
            .iter()
            .filter(|(x, y)| Vec2::new(*x, *y).distance(sender) <= radius)
            .count();
        prop_assert_eq!(reached, expected);
    }
}
