//! Watch a V1 attack unfold as ASCII frames of the intersection.
//!
//! Legend: `.` benign on plan, `~` cruising (awaiting plan), `!` the
//! attacker, `e` self-evacuating, `x` colluder, `+` intersection center.
//!
//! ```text
//! cargo run --release --example ascii_trace
//! ```

use nwade_repro::nwade::attack::{AttackSetting, ViolationKind};
use nwade_repro::sim::vehicle::DriveMode;
use nwade_repro::sim::{AttackPlan, SimConfig, Simulation};

const HALF: f64 = 200.0; // meters rendered each side of the center
const COLS: usize = 72;
const ROWS: usize = 28;

fn frame(sim: &Simulation) -> String {
    let mut grid = vec![vec![' '; COLS]; ROWS];
    grid[ROWS / 2][COLS / 2] = '+';
    for (_, pos, _, mode, malicious) in sim.vehicle_snapshot() {
        if pos.x.abs() > HALF || pos.y.abs() > HALF {
            continue;
        }
        let col = ((pos.x + HALF) / (2.0 * HALF) * (COLS - 1) as f64) as usize;
        let row = ((HALF - pos.y) / (2.0 * HALF) * (ROWS - 1) as f64) as usize;
        grid[row][col] = if malicious {
            if matches!(mode, DriveMode::Violate(_)) {
                '!'
            } else {
                'x'
            }
        } else {
            match mode {
                DriveMode::FollowPlan => '.',
                DriveMode::Cruise => '~',
                DriveMode::SelfEvacuate => 'e',
                DriveMode::Violate(_) => '!',
            }
        };
    }
    grid.into_iter()
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let mut config = SimConfig::default();
    config.duration = 110.0;
    config.density = 80.0;
    config.seed = 11;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::V1,
        violation: ViolationKind::SuddenStop,
        start: 60.0,
    });
    let mut next_frame = 50.0;
    let report = Simulation::new(config).run_with(|sim| {
        if sim.now() >= next_frame {
            next_frame += 20.0;
            let m = sim.metrics_so_far();
            println!(
                "\n=== t = {:5.1} s | active {} | reports so far: violator first seen {:?} ===",
                sim.now(),
                sim.vehicle_snapshot().len(),
                m.violation_first_report,
            );
            println!("{}", frame(sim));
        }
    });
    println!(
        "\nfinal: detected={} latency={:?} accidents={}",
        report.violation_detected(),
        report.detection_latency(),
        report.metrics.accidents
    );
}
