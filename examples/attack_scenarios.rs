//! Runs one round of every Table I attack setting and prints what NWADE
//! detected — a miniature of the paper's §VI-B effectiveness study.
//!
//! ```text
//! cargo run --release --example attack_scenarios
//! ```

use nwade_repro::nwade::attack::{AttackSetting, ViolationKind};
use nwade_repro::sim::{AttackPlan, SimConfig, Simulation};

fn main() {
    println!(
        "{:<8} {:>9} {:>12} {:>11} {:>10} {:>10}",
        "Setting", "detected", "latency[s]", "self-evac", "A-trigger", "accidents"
    );
    for setting in AttackSetting::ALL {
        let mut config = SimConfig::default();
        config.duration = 150.0;
        config.seed = 11;
        config.attack = Some(AttackPlan {
            setting,
            violation: ViolationKind::SuddenStop,
            start: 60.0,
        });
        let report = Simulation::new(config).run();
        let detected = if setting.plan_violations() > 0 {
            if report.violation_detected() {
                "yes"
            } else {
                "NO"
            }
            .to_string()
        } else if report.metrics.corrupted_block_detected.is_some() {
            "yes".to_string()
        } else {
            "NO".to_string()
        };
        println!(
            "{:<8} {:>9} {:>12} {:>11} {:>10} {:>10}",
            setting.label(),
            detected,
            report
                .detection_latency()
                .map_or("-".into(), |l| format!("{l:.1}")),
            report.metrics.benign_self_evacuations,
            if report.false_alarm_a_triggered() {
                "yes"
            } else {
                "no"
            },
            report.metrics.accidents,
        );
    }
}
