//! The threat-iii walkthrough: a compromised intersection manager signs a
//! block with conflicting travel plans; every vehicle's Algorithm 1 run
//! catches it, the fleet self-evacuates and broadcasts global reports.
//!
//! ```text
//! cargo run --release --example compromised_im
//! ```

use nwade_repro::nwade::attack::{AttackSetting, ViolationKind};
use nwade_repro::nwade::messages::class;
use nwade_repro::sim::{AttackPlan, SimConfig, Simulation};

fn main() {
    let mut config = SimConfig::default();
    config.duration = 150.0;
    config.density = 80.0;
    config.seed = 3;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::Im,
        violation: ViolationKind::SuddenStop,
        start: 60.0,
    });
    println!("running 150 s at 80 veh/min; the manager equivocates at t=60 s...\n");
    let report = Simulation::new(config).run();
    let m = &report.metrics;

    match m.corrupted_block_detected {
        Some(t) => println!(
            "corrupted block detected {:.2} s after the attack began",
            t - m.attack_start.expect("attack ran")
        ),
        None => println!("corrupted block was NOT detected (unexpected)"),
    }
    println!(
        "benign vehicles that self-evacuated and warned peers: {}",
        m.benign_self_evacuations
    );
    println!(
        "global reports on the air: {}",
        m.network.class(class::GLOBAL_REPORT).transmissions
    );
    println!(
        "traffic still flowed: {} of {} spawned vehicles exited",
        m.exited, m.spawned
    );
    println!("ground-truth collisions: {}", m.accidents);
}
