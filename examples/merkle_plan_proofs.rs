//! Fig. 3 in action: serving a single travel plan with a Merkle proof.
//!
//! A watcher needs its neighbour's plan but only holds the signed block
//! header. A peer serves the one plan plus an inclusion proof; the
//! watcher checks it against the root without trusting the peer.
//!
//! ```text
//! cargo run --release --example merkle_plan_proofs
//! ```

use nwade_repro::aim::{PlanRequest, ReservationScheduler, Scheduler, SchedulerConfig};
use nwade_repro::chain::BlockPackager;
use nwade_repro::crypto::merkle::leaf_hash;
use nwade_repro::crypto::MockScheme;
use nwade_repro::intersection::{build, GeometryConfig, IntersectionKind, MovementId};
use nwade_repro::traffic::{VehicleDescriptor, VehicleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let topo = Arc::new(build(
        IntersectionKind::FourWayCross,
        &GeometryConfig::default(),
    ));
    let mut scheduler = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
    let mut rng = StdRng::seed_from_u64(9);
    let plans: Vec<_> = (0..8u64)
        .flat_map(|i| {
            scheduler.schedule(
                &[PlanRequest {
                    id: VehicleId::new(i),
                    descriptor: VehicleDescriptor::random(&mut rng),
                    movement: MovementId::new(((i * 5) % 16) as u16),
                    position_s: 0.0,
                    speed: 15.0,
                }],
                i as f64 * 3.0,
            )
        })
        .collect();

    let mut packager = BlockPackager::new(Arc::new(MockScheme::from_seed(1)));
    let block = packager.package(plans, 0.0);
    println!(
        "block #{} holds {} plans under root {}…",
        block.index(),
        block.plans().len(),
        &block.merkle_root().to_hex()[..16]
    );

    // The peer extracts plan #5 with its proof.
    let tree = block.merkle_tree();
    let target = 5;
    let plan = &block.plans()[target];
    let proof = tree.prove(target);
    println!(
        "serving {}'s plan with a {}-hash proof",
        plan.id(),
        proof.siblings.len()
    );

    // The watcher verifies against the signed root it already has.
    let ok = proof.verify(&leaf_hash(&plan.encode()), &block.merkle_root());
    println!("proof verifies against the root: {ok}");
    assert!(ok);

    // A tampered plan (same vehicle, different instruction) fails.
    let mut forged = plan.encode();
    forged[40] ^= 0xFF;
    let bad = proof.verify(&leaf_hash(&forged), &block.merkle_root());
    println!("tampered plan accepted: {bad}");
    assert!(!bad);
}
