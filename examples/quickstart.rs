//! Quickstart: the NWADE pipeline in one file.
//!
//! Builds a 4-way intersection, schedules a batch of vehicles, packages
//! the plans into a signed block, and walks through what an honest and a
//! compromised manager look like from a vehicle's point of view.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nwade_repro::aim::{PlanRequest, ReservationScheduler, Scheduler, SchedulerConfig};
use nwade_repro::chain::{tamper, BlockPackager, ChainCache};
use nwade_repro::crypto::MockScheme;
use nwade_repro::intersection::{build, GeometryConfig, IntersectionKind, MovementId};
use nwade_repro::nwade::verify::block::verify_incoming_block;
use nwade_repro::nwade::{NwadeConfig, VehicleGuard};
use nwade_repro::traffic::{VehicleDescriptor, VehicleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    // 1. The intersection: the paper's common 4-way cross.
    let topo = Arc::new(build(
        IntersectionKind::FourWayCross,
        &GeometryConfig::default(),
    ));
    println!(
        "topology: {} — {} legs, {} movements, {} conflicting movement pairs",
        topo.name(),
        topo.legs().len(),
        topo.movements().len(),
        topo.conflicting_pairs().len()
    );

    // 2. The AIM scheduler (DASH stand-in): conflict-free travel plans.
    let mut scheduler = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
    let mut rng = StdRng::seed_from_u64(7);
    let requests: Vec<PlanRequest> = (0..6)
        .map(|i| PlanRequest {
            id: VehicleId::new(i),
            descriptor: VehicleDescriptor::random(&mut rng),
            movement: MovementId::new(((i * 5) % 16) as u16),
            position_s: 0.0,
            speed: 15.0,
        })
        .collect();
    let plans: Vec<_> = requests
        .iter()
        .enumerate()
        .flat_map(|(i, r)| scheduler.schedule(std::slice::from_ref(r), i as f64 * 3.0))
        .collect();
    println!("scheduled {} conflict-free travel plans", plans.len());

    // 3. The travel-plan blockchain (Eq. 1): package and sign the window.
    let signer = Arc::new(MockScheme::from_seed(42));
    let mut packager = BlockPackager::new(signer.clone());
    let block = packager.package(plans, 0.0);
    println!(
        "block #{}: {} plans, root {}, hash {}",
        block.index(),
        block.plans().len(),
        &block.merkle_root().to_hex()[..16],
        &block.hash().to_hex()[..16]
    );

    // 4. A vehicle verifies the block (Algorithm 1).
    let mut cache = ChainCache::new(60);
    verify_incoming_block(
        &block,
        &mut cache,
        signer.as_ref(),
        &topo,
        0.5,
        &Default::default(),
    )
    .expect("the honest block verifies");
    println!("vehicle-side verification: OK (signature, Merkle root, conflicts)");

    // 5. A compromised relay tampers with the block → caught immediately.
    let forged = tamper::forge_signature(&block);
    let verdict = verify_incoming_block(
        &forged,
        &mut cache,
        signer.as_ref(),
        &topo,
        0.5,
        &Default::default(),
    );
    println!("tampered block verdict: {}", verdict.unwrap_err());

    // 6. The full guard: a vehicle accepts its plan from the block.
    let mut guard = VehicleGuard::new(
        VehicleId::new(0),
        topo.clone(),
        signer,
        NwadeConfig::default(),
    );
    let actions = guard.on_block(&block, 0.1);
    println!(
        "guard actions on the honest block: {} (state: {})",
        actions.len(),
        guard.state()
    );
    println!("vehicle 0 now follows plan: {}", guard.plan().is_some());
}
