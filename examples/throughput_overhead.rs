//! Fig. 8 in miniature: throughput with and without the NWADE layer, and
//! the two baseline schedulers, on the 4-way cross.
//!
//! ```text
//! cargo run --release --example throughput_overhead
//! ```

use nwade_repro::sim::{SchedulerChoice, SimConfig, Simulation};

fn run(label: &str, configure: impl FnOnce(&mut SimConfig)) {
    let mut config = SimConfig::default();
    config.duration = 180.0;
    config.density = 80.0;
    config.seed = 5;
    configure(&mut config);
    let report = Simulation::new(config).run();
    println!(
        "{label:<28} {:>6.1} veh/min served  ({} spawned, {} exited)",
        report.metrics.throughput_per_minute(),
        report.metrics.spawned,
        report.metrics.exited
    );
}

fn main() {
    println!("offered load: 80 veh/min, 180 s, 4-way cross\n");
    run("reservation + NWADE", |_| {});
    run("reservation, no NWADE", |c| c.nwade_enabled = false);
    run("FCFS full lock + NWADE", |c| {
        c.scheduler = SchedulerChoice::Fcfs;
    });
    run("traffic light + NWADE", |c| {
        c.scheduler = SchedulerChoice::TrafficLight;
    });
}
