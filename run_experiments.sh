#!/usr/bin/env bash
# Regenerates every table and figure into expgen_output.txt.
set -euo pipefail
cd "$(dirname "$0")"
: "${NWADE_ROUNDS:=10}"
: "${NWADE_DURATION:=150}"
export NWADE_ROUNDS NWADE_DURATION
cargo build --release -p nwade-bench
./target/release/expgen all | tee expgen_output.txt
# Also regenerate the auxiliary sweeps.
NWADE_ROUNDS=5 ./target/release/expgen sensing violations | tee -a expgen_output.txt
