//! Umbrella crate for the NWADE reproduction workspace.
//!
//! Re-exports every subsystem crate so the root `examples/` and `tests/`
//! can exercise the full public API through one dependency. Downstream
//! users would normally depend on the individual crates instead.

#![forbid(unsafe_code)]

pub use nwade;
pub use nwade_aim as aim;
pub use nwade_chain as chain;
pub use nwade_crypto as crypto;
pub use nwade_geometry as geometry;
pub use nwade_intersection as intersection;
pub use nwade_sim as sim;
pub use nwade_store as store;
pub use nwade_traffic as traffic;
pub use nwade_vanet as vanet;
