//! The lossy-channel back-fill path: a vehicle that never saw the block
//! carrying its own plan recovers it from a peer's response.

use nwade_repro::aim::{PlanRequest, ReservationScheduler, Scheduler, SchedulerConfig};
use nwade_repro::chain::{Block, BlockPackager};
use nwade_repro::crypto::MockScheme;
use nwade_repro::intersection::{build, GeometryConfig, IntersectionKind, MovementId, Topology};
use nwade_repro::nwade::{GuardAction, NwadeConfig, VehicleGuard};
use nwade_repro::traffic::{VehicleDescriptor, VehicleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn chain(n: u64) -> (Arc<Topology>, Arc<MockScheme>, Vec<Block>) {
    let topo = Arc::new(build(
        IntersectionKind::FourWayCross,
        &GeometryConfig::default(),
    ));
    let scheme = Arc::new(MockScheme::from_seed(8));
    let mut scheduler = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());
    let mut packager = BlockPackager::new(scheme.clone());
    let blocks = (0..n)
        .map(|i| {
            let plans = scheduler.schedule(
                &[PlanRequest {
                    id: VehicleId::new(i),
                    descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(i)),
                    movement: MovementId::new(((i * 3) % 16) as u16),
                    position_s: 0.0,
                    speed: 15.0,
                }],
                i as f64 * 4.0,
            );
            packager.package(plans, i as f64 * 4.0)
        })
        .collect();
    (topo, scheme, blocks)
}

#[test]
fn planless_vehicle_backfills_and_follows() {
    let (topo, scheme, blocks) = chain(6);
    // Vehicle 2's plan is in block 2; it misses blocks 0-3 and first
    // hears block 4.
    let mut guard = VehicleGuard::new(
        VehicleId::new(2),
        topo.clone(),
        scheme.clone(),
        NwadeConfig::default(),
    );
    let actions = guard.on_block(&blocks[4], 20.0);
    // Accepted mid-chain, but no plan yet → history request.
    assert!(
        actions
            .iter()
            .any(|a| matches!(a, GuardAction::RequestBlocks { .. })),
        "planless vehicle asks for history, got {actions:?}"
    );
    assert!(guard.plan().is_none());

    // The peer serves the requested range; the guard back-fills and
    // finds its plan.
    let actions = guard.on_block_response(&blocks[0..4], 20.1);
    assert!(
        actions
            .iter()
            .any(|a| matches!(a, GuardAction::FollowPlan(p) if p.id().raw() == 2)),
        "back-filled plan adopted, got {actions:?}"
    );
    assert!(guard.plan().is_some());
    assert!(guard.cache().len() >= 4, "history integrated");
    assert!(!guard.is_evacuating());
}

#[test]
fn backfill_rejects_forged_history() {
    let (topo, scheme, blocks) = chain(5);
    let mut guard = VehicleGuard::new(
        VehicleId::new(1),
        topo.clone(),
        scheme.clone(),
        NwadeConfig::default(),
    );
    guard.on_block(&blocks[3], 20.0);
    // Forge the history the peer serves.
    let forged: Vec<Block> = blocks[0..3]
        .iter()
        .map(nwade_repro::chain::tamper::forge_signature)
        .collect();
    guard.on_block_response(&forged, 20.1);
    // Nothing integrated: the cache still starts at block 3.
    assert_eq!(guard.cache().len(), 1);
    assert_eq!(guard.cache().iter().next().expect("present").index(), 3);
}

#[test]
fn response_also_extends_forward() {
    let (topo, scheme, blocks) = chain(5);
    let mut guard = VehicleGuard::new(
        VehicleId::new(0),
        topo.clone(),
        scheme,
        NwadeConfig::default(),
    );
    guard.on_block(&blocks[0], 1.0);
    // A response containing the whole chain catches the guard up.
    guard.on_block_response(&blocks[1..], 2.0);
    assert_eq!(guard.cache().tip().expect("tip").index(), 4);
    assert_eq!(guard.cache().len(), 5);
}
