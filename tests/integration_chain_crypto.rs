//! Cross-crate integration: real RSA keys driving the travel-plan
//! blockchain end to end — keygen → schedule → package → verify →
//! tamper → reject.

use nwade_repro::aim::{PlanRequest, ReservationScheduler, Scheduler, SchedulerConfig};
use nwade_repro::chain::{tamper, BlockPackager, ChainCache};
use nwade_repro::crypto::{RsaKeyPair, RsaScheme};
use nwade_repro::intersection::{build, GeometryConfig, IntersectionKind, MovementId};
use nwade_repro::nwade::verify::block::{verify_incoming_block, BlockFailure};
use nwade_repro::traffic::{VehicleDescriptor, VehicleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn scheduled(
    scheduler: &mut ReservationScheduler,
    n: u64,
    offset: u64,
    t0: f64,
) -> Vec<nwade_repro::aim::TravelPlan> {
    (0..n)
        .flat_map(|i| {
            scheduler.schedule(
                &[PlanRequest {
                    id: VehicleId::new(offset + i),
                    descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(offset + i)),
                    movement: MovementId::new((((offset + i) * 7) % 16) as u16),
                    position_s: 0.0,
                    speed: 15.0,
                }],
                t0 + i as f64 * 4.0,
            )
        })
        .collect()
}

#[test]
fn rsa_backed_chain_end_to_end() {
    // 512-bit keys keep the debug-build test fast; the Fig. 6 harness
    // measures the full 2048-bit regime.
    let key = Arc::new(RsaScheme::new(RsaKeyPair::generate(
        512,
        &mut StdRng::seed_from_u64(99),
    )));
    let topo = Arc::new(build(
        IntersectionKind::FourWayCross,
        &GeometryConfig::default(),
    ));
    let mut packager = BlockPackager::new(key.clone());
    let mut cache = ChainCache::new(10);
    let mut scheduler = ReservationScheduler::new(topo.clone(), SchedulerConfig::default());

    for round in 0..3u64 {
        let plans = scheduled(&mut scheduler, 3, round * 100, round as f64 * 15.0);
        let block = packager.package(plans, round as f64 * 15.0);
        verify_incoming_block(
            &block,
            &mut cache,
            key.as_ref(),
            &topo,
            0.5,
            &Default::default(),
        )
        .expect("honest RSA-signed block verifies");
        cache.append(block).expect("chains onto the tip");
    }
    assert_eq!(cache.len(), 3);

    // A forged signature is caught by the RSA verification.
    let plans = scheduled(&mut scheduler, 2, 900, 60.0);
    let block = packager.package(plans, 60.0);
    let forged = tamper::forge_signature(&block);
    let err = verify_incoming_block(
        &forged,
        &mut cache,
        key.as_ref(),
        &topo,
        0.5,
        &Default::default(),
    )
    .expect_err("forged signature rejected");
    assert!(matches!(err, BlockFailure::Crypto(_)));

    // An equivocated block (real key, conflicting plans) passes crypto but
    // fails the semantic check.
    let conflicting = nwade_repro::aim::corrupt::make_conflicting(
        &scheduled(&mut scheduler, 8, 500, 200.0),
        &topo,
        200.0,
    )
    .expect("crossing traffic available");
    let evil = tamper::resign_with_plans(&block, conflicting, key.as_ref());
    let err = verify_incoming_block(
        &evil,
        &mut cache,
        key.as_ref(),
        &topo,
        0.5,
        &Default::default(),
    )
    .expect_err("conflicting plans rejected");
    assert!(matches!(err, BlockFailure::InternalConflict(_)));
}
