//! Chaos-harness integration tests: IM outage/restart recovery and
//! composable fault injection, exercised through the public facade.

use nwade_repro::nwade::attack::{AttackSetting, ViolationKind};
use nwade_repro::sim::{AttackPlan, ImOutage, SimConfig, Simulation};
use nwade_repro::vanet::FaultModel;

fn attacked(seed: u64) -> SimConfig {
    let mut config = SimConfig::default();
    config.duration = 150.0;
    config.seed = seed;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::V1,
        violation: ViolationKind::SuddenStop,
        start: 50.0,
    });
    config
}

/// The acceptance scenario: the manager goes dark right as an attack
/// unfolds. Incident reports die on the wire, reporters exhaust the
/// report-submission retrier and self-evacuate on `ImTimeout`; after the
/// restart the manager rebuilds from its chain, the next block broadcast
/// re-admits the fleet, and no vehicle is left publicly flagged as
/// evacuating.
///
/// The durable store is disabled here on purpose: this pins the *cold*
/// recovery path (evacuate, then readmit) that warm recovery is measured
/// against.
#[test]
fn im_outage_evacuation_and_recovery() {
    let mut config = attacked(41);
    config.store.enabled = false;
    config.im_outage = Some(ImOutage {
        start: 50.0,
        duration: 20.0,
    });

    let mut final_lingering = usize::MAX;
    let report = Simulation::new(config).run_with(|sim| {
        final_lingering = sim.lingering_announcements();
    });

    eprintln!(
        "outage_drops={} im_timeout_evac={} readmitted={} lingering={} detected={} exited={} accidents={} invariants={}",
        report.metrics.imu_outage_drops,
        report.metrics.im_timeout_evacuations,
        report.metrics.readmitted_after_outage,
        final_lingering,
        report.violation_detected(),
        report.metrics.exited,
        report.metrics.accidents,
        report.metrics.invariants.total(),
    );

    assert!(
        report.metrics.imu_outage_drops > 0,
        "the outage window actually silenced the manager"
    );
    assert!(
        report.metrics.im_timeout_evacuations > 0,
        "reporters hit the ImTimeout edge while the manager was dark"
    );
    assert!(
        report.metrics.readmitted_after_outage > 0,
        "a fresh block after the restart re-admitted evacuees"
    );
    assert_eq!(
        final_lingering, 0,
        "no vehicle is left publicly marked evacuating after recovery"
    );
    assert!(
        report.metrics.invariants.is_clean(),
        "safety invariants held across outage and restart: {}",
        report.metrics.invariants
    );
    assert_eq!(
        report.metrics.cold_recoveries, 1,
        "with the store disabled the restart takes the cold path"
    );
    assert_eq!(
        report.metrics.warm_recoveries, 0,
        "no warm recovery without a durable store"
    );
}

/// Warm-recovery acceptance: the manager process is killed mid-window
/// (before the staged block's commit record hits the durability
/// barrier), leaving a torn tail in the log. Recovery must truncate the
/// tail, replay the window, rebroadcast the re-created block in the
/// same tick — so nobody ever notices the manager died: no timeout
/// self-evacuations, no readmissions, traffic keeps flowing.
#[cfg(feature = "store")]
#[test]
fn im_crash_recovers_warm_without_evacuation() {
    use nwade_repro::nwade::CrashPoint;
    use nwade_repro::sim::CrashPlan;

    let mut config = SimConfig::default();
    config.duration = 150.0;
    config.seed = 44;
    config.im_crash = Some(CrashPlan {
        at: 60.0,
        point: CrashPoint::BeforeCommit,
        cold_downtime: 20.0,
    });

    let report = Simulation::new(config).run();

    eprintln!(
        "crashes={} warm={} cold={} truncated={} timeout_evac={} readmitted={} exited={} invariants={}",
        report.metrics.im_crashes,
        report.metrics.warm_recoveries,
        report.metrics.cold_recoveries,
        report.metrics.wal_truncated_bytes,
        report.metrics.im_timeout_evacuations,
        report.metrics.readmitted_after_outage,
        report.metrics.exited,
        report.metrics.invariants.total(),
    );

    assert_eq!(report.metrics.im_crashes, 1, "the crash injection fired");
    assert_eq!(
        report.metrics.warm_recoveries, 1,
        "the store brought the manager back warm"
    );
    assert_eq!(report.metrics.cold_recoveries, 0, "no cold fallback");
    assert_eq!(
        report.metrics.im_timeout_evacuations, 0,
        "warm recovery is invisible to the fleet: no timeout evacuations"
    );
    assert_eq!(
        report.metrics.readmitted_after_outage, 0,
        "nobody evacuated, so nobody needed readmission"
    );
    assert!(report.metrics.exited > 10, "traffic kept flowing");
    assert_eq!(report.metrics.accidents, 0, "no collisions");
    assert!(
        report.metrics.invariants.is_clean(),
        "safety invariants held across the crash: {}",
        report.metrics.invariants
    );
}

/// A full composable-fault run at moderate intensity: duplication,
/// reordering jitter, corruption (exercising the signature-reject path),
/// and bursty loss all at once. With no attacker on the road the honest
/// fleet must come through with zero accidents, traffic still flowing,
/// and every tick-time invariant intact.
#[test]
fn composable_faults_preserve_safety_invariants() {
    let mut config = SimConfig::default();
    config.duration = 150.0;
    config.seed = 43;
    config.medium.faults = FaultModel::at_intensity(0.2);

    let report = Simulation::new(config).run();

    eprintln!(
        "corrupted_drops={} net={:?} exited={} accidents={} invariants={}",
        report.metrics.corrupted_drops,
        report.metrics.network,
        report.metrics.exited,
        report.metrics.accidents,
        report.metrics.invariants.total(),
    );

    assert!(
        report.metrics.invariants.is_clean(),
        "invariants stay clean under composed faults: {}",
        report.metrics.invariants
    );
    assert_eq!(
        report.metrics.accidents, 0,
        "no collisions among the honest fleet"
    );
    assert!(
        report.metrics.exited > 10,
        "traffic still flows under chaos"
    );
    assert!(
        report.metrics.corrupted_drops > 0,
        "the corruption fault was live on non-block traffic"
    );
}

/// Fault-free control: the invariant checker itself must be quiet on a
/// clean attacked run (no false positives from the checker).
#[test]
fn invariant_checker_quiet_on_clean_run() {
    let report = Simulation::new(attacked(42)).run();
    assert!(
        report.metrics.invariants.is_clean(),
        "checker is silent without injected faults: {}",
        report.metrics.invariants
    );
    assert!(report.violation_detected());
}
