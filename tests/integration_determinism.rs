//! Determinism: identical configurations must reproduce identical runs —
//! the property every experiment in EXPERIMENTS.md silently relies on.

use nwade_repro::nwade::attack::{AttackSetting, ViolationKind};
use nwade_repro::sim::{AttackPlan, SimConfig, Simulation};

fn config(seed: u64) -> SimConfig {
    let mut config = SimConfig::default();
    config.duration = 100.0;
    config.density = 60.0;
    config.seed = seed;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::V2,
        violation: ViolationKind::LaneDeviation,
        start: 50.0,
    });
    config
}

#[test]
fn same_seed_same_world() {
    let a = Simulation::new(config(123)).run();
    let b = Simulation::new(config(123)).run();
    assert_eq!(a.metrics.spawned, b.metrics.spawned);
    assert_eq!(a.metrics.exited, b.metrics.exited);
    assert_eq!(a.metrics.accidents, b.metrics.accidents);
    assert_eq!(a.metrics.blocks_broadcast, b.metrics.blocks_broadcast);
    assert_eq!(
        a.metrics.benign_self_evacuations,
        b.metrics.benign_self_evacuations
    );
    assert_eq!(a.metrics.violation_confirmed, b.metrics.violation_confirmed);
    assert_eq!(
        a.metrics.network.total_transmissions(),
        b.metrics.network.total_transmissions()
    );
}

#[test]
fn different_seeds_differ() {
    let a = Simulation::new(config(1)).run();
    let b = Simulation::new(config(2)).run();
    // Arrival processes differ, so at least the packet totals do.
    assert_ne!(
        a.metrics.network.total_transmissions(),
        b.metrics.network.total_transmissions()
    );
}
