//! Additional cross-crate guard behaviours: block gap recovery via peer
//! responses, threshold-driven self-evacuation, and the Type B rebuttal.

use nwade_repro::aim::{PlanRequest, ReservationScheduler, Scheduler, SchedulerConfig};
use nwade_repro::chain::{Block, BlockPackager};
use nwade_repro::crypto::MockScheme;
use nwade_repro::intersection::{build, GeometryConfig, IntersectionKind, MovementId, Topology};
use nwade_repro::nwade::messages::{GlobalClaim, GlobalReport};
use nwade_repro::nwade::{GuardAction, NwadeConfig, VehicleGuard};
use nwade_repro::traffic::{VehicleDescriptor, VehicleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

struct Chain {
    topo: Arc<Topology>,
    scheme: Arc<MockScheme>,
    scheduler: ReservationScheduler,
    packager: BlockPackager,
    clock: f64,
    next: u64,
}

impl Chain {
    fn new() -> Self {
        let topo = Arc::new(build(
            IntersectionKind::FourWayCross,
            &GeometryConfig::default(),
        ));
        let scheme = Arc::new(MockScheme::from_seed(5));
        Chain {
            scheduler: ReservationScheduler::new(topo.clone(), SchedulerConfig::default()),
            packager: BlockPackager::new(scheme.clone()),
            topo,
            scheme,
            clock: 0.0,
            next: 0,
        }
    }

    fn block(&mut self) -> Block {
        self.clock += 4.0;
        let id = self.next;
        self.next += 1;
        let plans = self.scheduler.schedule(
            &[PlanRequest {
                id: VehicleId::new(id),
                descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
                movement: MovementId::new(((id * 3) % 16) as u16),
                position_s: 0.0,
                speed: 15.0,
            }],
            self.clock,
        );
        self.packager.package(plans, self.clock)
    }

    fn guard(&self, id: u64) -> VehicleGuard {
        VehicleGuard::new(
            VehicleId::new(id),
            self.topo.clone(),
            self.scheme.clone(),
            NwadeConfig::default(),
        )
    }
}

#[test]
fn gap_recovery_via_peer_block_response() {
    let mut chain = Chain::new();
    let b0 = chain.block();
    let b1 = chain.block();
    let b2 = chain.block();

    // A well-informed peer holds the full chain.
    let mut peer = chain.guard(100);
    for b in [&b0, &b1, &b2] {
        peer.on_block(b, chain.clock);
    }
    assert_eq!(peer.cache().len(), 3);

    // The victim misses b1: receiving b2 asks for the gap.
    let mut victim = chain.guard(101);
    victim.on_block(&b0, 10.0);
    let actions = victim.on_block(&b2, 11.0);
    let [GuardAction::RequestBlocks { from_index: 1 }] = actions.as_slice() else {
        panic!("expected a gap request, got {actions:?}");
    };

    // The peer serves its cache; the victim replays and catches up.
    let response: Vec<Block> = peer
        .cache()
        .iter()
        .filter(|b| b.index() >= 1)
        .cloned()
        .collect();
    for b in &response {
        victim.on_block(b, 11.1);
    }
    assert_eq!(victim.cache().len(), 3);
    assert_eq!(victim.cache().tip().expect("tip").index(), 2);
    assert!(!victim.is_evacuating());
}

#[test]
fn distinct_senders_reach_threshold_once() {
    let mut chain = Chain::new();
    let b0 = chain.block();
    let mut guard = chain.guard(50);
    guard.on_block(&b0, 1.0);

    let claim = GlobalClaim::AbnormalVehicle {
        suspect: VehicleId::new(999),
    };
    let mut evacuated = false;
    // Nine reports from only three distinct senders at threshold 4: never
    // evacuates. Then a fourth sender tips it.
    for i in 0..9u64 {
        let report = GlobalReport {
            sender: VehicleId::new(1 + (i % 3)),
            claim,
            time: 2.0,
        };
        let actions = guard.on_global_report(&report, |_| false, 4, 2.0);
        evacuated |= actions
            .iter()
            .any(|a| matches!(a, GuardAction::SelfEvacuate));
    }
    assert!(!evacuated, "three distinct senders stay below threshold 4");
    let report = GlobalReport {
        sender: VehicleId::new(9),
        claim,
        time: 3.0,
    };
    let actions = guard.on_global_report(&report, |_| false, 4, 3.0);
    assert!(actions
        .iter()
        .any(|a| matches!(a, GuardAction::SelfEvacuate)));
    assert!(guard.is_evacuating());
    assert_eq!(guard.evacuation_claim(), Some(claim));
}

#[test]
fn type_b_claim_about_held_block_is_rebutted_at_any_support() {
    let mut chain = Chain::new();
    let b0 = chain.block();
    let mut guard = chain.guard(60);
    guard.on_block(&b0, 1.0);

    let claim = GlobalClaim::ConflictingPlans { index: 0 };
    for sender in 1..=20u64 {
        let report = GlobalReport {
            sender: VehicleId::new(sender),
            claim,
            time: 2.0,
        };
        let actions = guard.on_global_report(&report, |_| false, 3, 2.0);
        assert!(
            actions
                .iter()
                .all(|a| matches!(a, GuardAction::RebutGlobalReport { .. })),
            "held-and-verified block: always rebutted, got {actions:?}"
        );
    }
    assert!(!guard.is_evacuating(), "Table II: type B never triggers");
}

#[test]
fn alerts_for_confirmed_suspects_do_not_escalate() {
    let mut chain = Chain::new();
    let b0 = chain.block();
    let mut guard = chain.guard(70);
    guard.on_block(&b0, 1.0);
    // The manager alerted about vehicle 0; the guard noted the threat.
    guard.note_threat(VehicleId::new(0));
    let claim = GlobalClaim::AbnormalVehicle {
        suspect: VehicleId::new(0),
    };
    for sender in 1..=20u64 {
        let report = GlobalReport {
            sender: VehicleId::new(sender),
            claim,
            time: 2.0,
        };
        assert!(guard
            .on_global_report(&report, |_| false, 3, 2.0)
            .is_empty());
    }
    assert!(!guard.is_evacuating(), "handled threats never cause panic");
}
