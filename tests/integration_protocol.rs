//! Cross-crate integration of the protocol engines (no simulator): a
//! manager and a fleet of guards exchanging messages by direct calls.

use nwade_repro::aim::{PlanRequest, ReservationScheduler, SchedulerConfig};
use nwade_repro::crypto::MockScheme;
use nwade_repro::intersection::{build, GeometryConfig, IntersectionKind, MovementId, Topology};
use nwade_repro::nwade::messages::Observation;
use nwade_repro::nwade::{GuardAction, ManagerAction, NwadeConfig, NwadeManager, VehicleGuard};
use nwade_repro::traffic::{VehicleDescriptor, VehicleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

struct World {
    topo: Arc<Topology>,
    manager: NwadeManager,
    guards: Vec<VehicleGuard>,
}

fn world(n_vehicles: u64) -> World {
    let topo = Arc::new(build(
        IntersectionKind::FourWayCross,
        &GeometryConfig::default(),
    ));
    let scheme = Arc::new(MockScheme::from_seed(7));
    let manager = NwadeManager::new(
        topo.clone(),
        Box::new(ReservationScheduler::new(
            topo.clone(),
            SchedulerConfig::default(),
        )),
        scheme.clone(),
        NwadeConfig::default(),
    );
    let guards = (0..n_vehicles)
        .map(|i| {
            VehicleGuard::new(
                VehicleId::new(i),
                topo.clone(),
                scheme.clone(),
                NwadeConfig::default(),
            )
        })
        .collect();
    World {
        topo,
        manager,
        guards,
    }
}

fn request(i: u64) -> PlanRequest {
    PlanRequest {
        id: VehicleId::new(i),
        descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(i)),
        movement: MovementId::new(((i * 5) % 16) as u16),
        position_s: 0.0,
        speed: 15.0,
    }
}

#[test]
fn every_vehicle_accepts_its_plan_from_the_block() {
    let mut w = world(6);
    // One vehicle per window, as spawns arrive.
    for i in 0..6u64 {
        let action = w
            .manager
            .on_window(&[request(i)], i as f64 * 4.0)
            .expect("block produced");
        let ManagerAction::BroadcastBlock(block) = action else {
            panic!("expected a block");
        };
        for guard in w.guards.iter_mut() {
            let actions = guard.on_block(&block, i as f64 * 4.0 + 0.03);
            // Exactly the owner follows a fresh plan from this block.
            let follows = actions
                .iter()
                .any(|a| matches!(a, GuardAction::FollowPlan(p) if p.id() == guard.id()));
            assert_eq!(follows, guard.id().raw() == i, "vehicle {}", guard.id());
        }
    }
    for guard in &w.guards {
        assert!(guard.plan().is_some(), "{} got its plan", guard.id());
        assert_eq!(guard.cache().len(), 6);
    }
}

#[test]
fn report_poll_confirm_cycle_through_both_engines() {
    let mut w = world(8);
    // Plan everyone in one window.
    let reqs: Vec<PlanRequest> = (0..8).map(request).collect();
    let action = w.manager.on_window(&reqs, 0.0).expect("block");
    let ManagerAction::BroadcastBlock(block) = action else {
        panic!()
    };
    for guard in w.guards.iter_mut() {
        guard.on_block(&block, 0.03);
    }

    // Vehicle 1 deviates; vehicle 0 observes and reports.
    let plan1 = block.plan_for(VehicleId::new(1)).expect("plan").clone();
    let (expected, speed) = plan1.expected_state(&w.topo, 10.0);
    let obs = Observation {
        target: VehicleId::new(1),
        position: expected + nwade_repro::geometry::Vec2::new(40.0, 0.0),
        speed,
        time: 10.0,
    };
    let actions = w.guards[0].on_observations(&[obs], 10.0);
    let GuardAction::SendIncidentReport(report) = &actions[0] else {
        panic!("expected a report, got {actions:?}");
    };

    // Manager polls watchers 2..7; all answer from their caches with the
    // same deviating observation.
    let watchers: Vec<VehicleId> = (2..8).map(VehicleId::new).collect();
    let actions = w.manager.on_incident_report(report, &watchers, 10.03);
    let [ManagerAction::PollWatchers {
        request_id, group, ..
    }] = actions.as_slice()
    else {
        panic!("expected a poll, got {actions:?}");
    };
    let rid = *request_id;
    let group = group.clone();
    let mut outcome = Vec::new();
    for watcher in &group {
        let (observed, abnormal) = w.guards[watcher.raw() as usize].answer_verify_request(
            VehicleId::new(1),
            Some(&obs),
            None,
        );
        assert!(observed, "watcher has the plan and the observation");
        assert!(abnormal, "watcher confirms the deviation");
        outcome =
            w.manager
                .on_verify_response(rid, VehicleId::new(1), observed, abnormal, &[], 10.1);
        if !outcome.is_empty() {
            break;
        }
    }
    // Round 1 confirmed → round-2 poll of fresh watchers; with no fresh
    // candidates the manager acts on round 1 and alerts.
    let confirmed = match outcome.as_slice() {
        [ManagerAction::EvacuationAlert { suspect, .. }] => *suspect,
        [ManagerAction::PollWatchers { .. }] => panic!("round 2 should have no candidates"),
        other => panic!("unexpected outcome {other:?}"),
    };
    assert_eq!(confirmed, VehicleId::new(1));
    assert_eq!(w.manager.confirmed_malicious(), &[VehicleId::new(1)]);

    // The reporter resolves its pending report on the alert.
    let dissent = w.guards[0].on_evacuation_alert(VehicleId::new(1), Some(&obs), 10.2);
    assert!(dissent.is_empty(), "deviating suspect: no dissent");
}

#[test]
fn evacuation_block_replans_the_fleet() {
    let mut w = world(4);
    let reqs: Vec<PlanRequest> = (0..4).map(request).collect();
    let ManagerAction::BroadcastBlock(block) = w.manager.on_window(&reqs, 0.0).expect("block")
    else {
        panic!()
    };
    for guard in w.guards.iter_mut() {
        guard.on_block(&block, 0.03);
    }
    // Confirm vehicle 3 (no watchers → immediate confirmation) and issue
    // the evacuation block from everyone's time-10 states.
    let plan3 = block.plan_for(VehicleId::new(3)).expect("plan").clone();
    let (pos3, _) = plan3.expected_state(&w.topo, 10.0);
    let report = nwade_repro::nwade::messages::IncidentReport {
        reporter: VehicleId::new(0),
        suspect: VehicleId::new(3),
        evidence: Observation {
            target: VehicleId::new(3),
            position: pos3,
            speed: 0.0,
            time: 10.0,
        },
        block_index: 0,
    };
    let actions = w.manager.on_incident_report(&report, &[], 10.0);
    assert!(matches!(
        actions.as_slice(),
        [ManagerAction::EvacuationAlert { .. }]
    ));
    let states: Vec<PlanRequest> = (0..3)
        .map(|i| {
            let plan = block.plan_for(VehicleId::new(i)).expect("plan");
            let (s, v) = plan.profile().state_at(10.0);
            PlanRequest {
                id: VehicleId::new(i),
                descriptor: plan.descriptor().clone(),
                movement: plan.movement(),
                position_s: s,
                speed: v,
            }
        })
        .collect();
    let action = w
        .manager
        .evacuation_block(&states, &[pos3], 10.0)
        .expect("evacuation block");
    let ManagerAction::BroadcastBlock(evac) = action else {
        panic!()
    };
    assert_eq!(evac.index(), block.index() + 1);
    // Every benign guard accepts the evacuation block and re-plans.
    for guard in w.guards.iter_mut().take(3) {
        guard.note_threat(VehicleId::new(3));
        let actions = guard.on_block(&evac, 10.1);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, GuardAction::FollowPlan(_))),
            "{} re-plans from the evacuation block",
            guard.id()
        );
    }
}
