//! The honest manager's publish filter: it must never sign a block its
//! own vehicles would reject, even when handed a scheduler state that
//! was damaged on purpose.

use nwade_repro::aim::{find_conflicts, PlanRequest, ReservationScheduler, SchedulerConfig};
use nwade_repro::crypto::MockScheme;
use nwade_repro::intersection::{build, GeometryConfig, IntersectionKind, MovementId, Topology};
use nwade_repro::nwade::{ManagerAction, NwadeConfig, NwadeManager};
use nwade_repro::traffic::{VehicleDescriptor, VehicleId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn topo() -> Arc<Topology> {
    Arc::new(build(
        IntersectionKind::FourWayCross,
        &GeometryConfig::default(),
    ))
}

fn request(id: u64, movement: usize, s: f64) -> PlanRequest {
    PlanRequest {
        id: VehicleId::new(id),
        descriptor: VehicleDescriptor::random(&mut StdRng::seed_from_u64(id)),
        movement: MovementId::new(movement as u16),
        position_s: s,
        speed: 15.0,
    }
}

#[test]
fn every_published_block_is_verifier_clean() {
    let topo = topo();
    let mut m = NwadeManager::new(
        topo.clone(),
        Box::new(ReservationScheduler::new(
            topo.clone(),
            SchedulerConfig::default(),
        )),
        Arc::new(MockScheme::from_seed(0)),
        NwadeConfig::default(),
    );
    // A rolling set of current plans, merged exactly as a verifier would.
    let mut current: std::collections::HashMap<VehicleId, nwade_repro::aim::TravelPlan> =
        std::collections::HashMap::new();
    let n_mv = topo.movements().len();
    for window in 0..20u64 {
        let reqs: Vec<PlanRequest> = (0..3)
            .map(|j| {
                let id = window * 10 + j;
                request(id, (id as usize * 7) % n_mv, 0.0)
            })
            .collect();
        let Some(ManagerAction::BroadcastBlock(block)) = m.on_window(&reqs, window as f64 * 2.0)
        else {
            continue;
        };
        for plan in block.plans() {
            current.insert(plan.id(), plan.clone());
        }
        let merged: Vec<_> = current.values().cloned().collect();
        assert!(
            find_conflicts(&merged, &topo, NwadeConfig::default().conflict_gap).is_empty(),
            "window {window}: published history must stay conflict-free"
        );
    }
}

#[test]
fn manager_survives_pathological_request_streams() {
    // Requests at clashing positions, repeated ids, mid-path positions —
    // whatever happens, no published block may carry a conflict.
    let topo = topo();
    let mut m = NwadeManager::new(
        topo.clone(),
        Box::new(ReservationScheduler::new(
            topo.clone(),
            SchedulerConfig::default(),
        )),
        Arc::new(MockScheme::from_seed(1)),
        NwadeConfig::default(),
    );
    let streams: Vec<Vec<PlanRequest>> = vec![
        // Same spawn point, same instant, crossing movements.
        (0..6)
            .map(|i| request(i, (i as usize * 5) % 16, 0.0))
            .collect(),
        // Re-requests of already-planned vehicles from new positions.
        (0..6)
            .map(|i| request(i, (i as usize * 5) % 16, 120.0))
            .collect(),
        // Vehicles already past the box.
        (10..14)
            .map(|i| request(i, (i as usize * 3) % 16, 400.0))
            .collect(),
    ];
    let mut current: std::collections::HashMap<VehicleId, nwade_repro::aim::TravelPlan> =
        std::collections::HashMap::new();
    for (w, reqs) in streams.into_iter().enumerate() {
        if let Some(ManagerAction::BroadcastBlock(block)) = m.on_window(&reqs, w as f64 * 5.0) {
            for plan in block.plans() {
                current.insert(plan.id(), plan.clone());
            }
            let merged: Vec<_> = current.values().cloned().collect();
            assert!(
                find_conflicts(&merged, &topo, 0.5).is_empty(),
                "stream {w} produced a conflicting publication"
            );
        }
    }
}

#[test]
fn manager_serves_recent_blocks() {
    let topo = topo();
    let mut m = NwadeManager::new(
        topo.clone(),
        Box::new(ReservationScheduler::new(
            topo.clone(),
            SchedulerConfig::default(),
        )),
        Arc::new(MockScheme::from_seed(2)),
        NwadeConfig::default(),
    );
    for w in 0..5u64 {
        let _ = m.on_window(&[request(w, (w as usize * 7) % 16, 0.0)], w as f64 * 3.0);
    }
    let blocks = m.blocks_from(2);
    assert_eq!(blocks.len(), 3);
    assert_eq!(blocks[0].index(), 2);
    assert_eq!(blocks[2].index(), 4);
    assert!(m.blocks_from(99).is_empty());
}
