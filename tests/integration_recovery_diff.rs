//! Differential crash-recovery tests: a run that crashes the manager at
//! any injection point and recovers warm from the durable store must be
//! observationally identical to a run that never crashed — same blocks,
//! same schedule, same chain tip, zero evacuations.

#![cfg(feature = "store")]

use nwade_repro::nwade::CrashPoint;
use nwade_repro::sim::{CrashPlan, SimConfig, Simulation};

fn base_config() -> SimConfig {
    let mut config = SimConfig::default();
    config.duration = 120.0;
    config.seed = 77;
    config
}

struct Observed {
    blocks_broadcast: usize,
    plans_scheduled: usize,
    block_sizes: Vec<usize>,
    exited: usize,
    accidents: usize,
    chain_next_index: u64,
    chain_tip: nwade_repro::crypto::Digest,
    warm_recoveries: usize,
    cold_recoveries: usize,
    im_crashes: usize,
    imu_outage_drops: usize,
    im_timeout_evacuations: usize,
    readmitted_after_outage: usize,
    invariants_clean: bool,
}

fn observe(config: SimConfig) -> Observed {
    let mut chain_next_index = 0;
    let mut chain_tip = nwade_repro::crypto::Digest([0u8; 32]);
    let report = Simulation::new(config).run_with(|sim| {
        chain_next_index = sim.chain_next_index();
        chain_tip = sim.chain_tip();
    });
    Observed {
        blocks_broadcast: report.metrics.blocks_broadcast,
        plans_scheduled: report.metrics.plans_scheduled,
        block_sizes: report.metrics.block_sizes.clone(),
        exited: report.metrics.exited,
        accidents: report.metrics.accidents,
        chain_next_index,
        chain_tip,
        warm_recoveries: report.metrics.warm_recoveries,
        cold_recoveries: report.metrics.cold_recoveries,
        im_crashes: report.metrics.im_crashes,
        imu_outage_drops: report.metrics.imu_outage_drops,
        im_timeout_evacuations: report.metrics.im_timeout_evacuations,
        readmitted_after_outage: report.metrics.readmitted_after_outage,
        invariants_clean: report.metrics.invariants.is_clean(),
    }
}

/// Crash at every injection point; each recovered run must match the
/// crash-free baseline block for block.
#[test]
fn recovery_is_observationally_identical_at_every_crash_point() {
    let baseline = observe(base_config());
    assert!(baseline.invariants_clean, "baseline invariants clean");
    assert!(baseline.blocks_broadcast > 0, "baseline broadcast blocks");

    for point in [
        CrashPoint::AfterStage,
        CrashPoint::BeforeCommit,
        CrashPoint::AfterCommit,
    ] {
        let mut config = base_config();
        config.im_crash = Some(CrashPlan {
            at: 55.0,
            point,
            cold_downtime: 20.0,
        });
        let crashed = observe(config);

        assert_eq!(
            crashed.warm_recoveries, 1,
            "{point}: crash recovered warm from the store"
        );
        assert_eq!(
            crashed.blocks_broadcast, baseline.blocks_broadcast,
            "{point}: same number of blocks broadcast"
        );
        assert_eq!(
            crashed.block_sizes, baseline.block_sizes,
            "{point}: block-by-block identical plan counts"
        );
        assert_eq!(
            crashed.plans_scheduled, baseline.plans_scheduled,
            "{point}: same schedule"
        );
        assert_eq!(
            crashed.chain_next_index, baseline.chain_next_index,
            "{point}: chain height matches the crash-free run"
        );
        assert_eq!(
            crashed.chain_tip, baseline.chain_tip,
            "{point}: chain tip hash matches the crash-free run"
        );
        assert_eq!(
            crashed.exited, baseline.exited,
            "{point}: same vehicles made it through"
        );
        assert_eq!(crashed.accidents, 0, "{point}: no collisions");
        assert_eq!(
            crashed.im_timeout_evacuations, 0,
            "{point}: no vehicle noticed the crash"
        );
        assert_eq!(
            crashed.readmitted_after_outage, 0,
            "{point}: warm recovery never evacuates, so never readmits"
        );
        assert!(
            crashed.invariants_clean,
            "{point}: safety invariants held through crash and recovery"
        );
    }
}

/// The same crash with the store disabled must take the visible path:
/// darkness while reporters wait, timeout self-evacuations, cold
/// restart. This is the cost the WAL exists to avoid. The attack is
/// what puts reporters into the waiting state the silence then times
/// out.
#[test]
fn cold_crash_is_visible_to_the_fleet() {
    use nwade_repro::nwade::attack::{AttackSetting, ViolationKind};
    use nwade_repro::sim::AttackPlan;

    let mut config = base_config();
    config.duration = 150.0;
    config.seed = 41;
    config.store.enabled = false;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::V1,
        violation: ViolationKind::SuddenStop,
        start: 50.0,
    });
    // Crash on the same window the attack starts, so the incident
    // reports fall into the dark window — the same shape as the
    // scheduled-outage chaos test.
    config.im_crash = Some(CrashPlan {
        at: 50.0,
        point: CrashPoint::BeforeCommit,
        cold_downtime: 20.0,
    });
    let crashed = observe(config);

    eprintln!(
        "cold: warm={} timeout_evac={} readmitted={} blocks={} exited={} crashes={} cold_rec={} drops={}",
        crashed.warm_recoveries,
        crashed.im_timeout_evacuations,
        crashed.readmitted_after_outage,
        crashed.blocks_broadcast,
        crashed.exited,
        crashed.im_crashes,
        crashed.cold_recoveries,
        crashed.imu_outage_drops,
    );
    assert_eq!(crashed.warm_recoveries, 0, "no store, no warm recovery");
    assert!(
        crashed.im_timeout_evacuations > 0,
        "the fleet noticed the dark manager and self-evacuated"
    );
    assert!(crashed.invariants_clean, "cold path still violates nothing");
}
