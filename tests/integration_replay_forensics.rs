//! Differential test for time-travel forensics: recording a run through
//! [`WorldHistory`] and resimulating from any captured rewind point must
//! reproduce the original run bit-identically — across the plain,
//! attack, and chaos scenarios and across every tick engine.
//!
//! The replay engine verifies each re-executed tick's state hash against
//! the recorded stream, so any nondeterminism (in the engines, the RNG
//! capture, the durable-store fork, or the snapshot deep-clone) surfaces
//! as a pinpointed [`ReplayError::Divergence`] rather than a silently
//! wrong forensic conclusion.

use nwade_repro::nwade::attack::{AttackSetting, ViolationKind};
use nwade_repro::sim::{
    AttackPlan, EngineChoice, ImOutage, IncidentKind, SimConfig, Simulation, WorldHistory,
};

/// Snapshot cadence for the recordings: every 5 s of simulated time.
const CADENCE: u64 = 50;
/// Ring capacity: the newest 8 unpinned snapshots stay rewindable.
const CAPACITY: usize = 8;

fn record(mut config: SimConfig, engine: EngineChoice) -> WorldHistory {
    config.engine = engine;
    let mut history = WorldHistory::new(CADENCE, CAPACITY);
    let _ = Simulation::new(config).run_with(|sim| history.observe(sim));
    history
}

fn hash_stream(history: &WorldHistory) -> Vec<u64> {
    let last = history.last_tick().expect("recorded run is non-empty");
    (1..=last)
        .map(|t| history.hash_at(t).expect("hash for every observed tick"))
        .collect()
}

/// Replays the recording from its rewind points and asserts the
/// bit-identical guarantee:
///
/// * full replays (to the end of the recording) from the earliest and
///   latest retained snapshots, checking the final state hash,
/// * a windowed replay from every other snapshot,
/// * a replay through each incident from its pinned rewind point.
fn check_replays(label: &str, history: &WorldHistory) {
    let last = history.last_tick().expect("recorded run is non-empty");
    let final_hash = history.hash_at(last).expect("final hash recorded");
    let snapshots = history.snapshot_ticks();
    assert!(!snapshots.is_empty(), "{label}: no snapshots retained");

    for (i, &start) in snapshots.iter().enumerate() {
        let full = i == 0 || i == snapshots.len() - 1;
        let end = if full {
            last + 1
        } else {
            (start + 150).min(last + 1)
        };
        let mut instrumented = 0u64;
        let report = history
            .resimulate(start..end, |_| instrumented += 1)
            .unwrap_or_else(|e| panic!("{label}: replay from tick {start} failed: {e}"));
        assert_eq!(report.started_from, start, "{label}: wrong rewind point");
        assert_eq!(
            report.ticks_replayed,
            end - 1 - start,
            "{label}: replay tick count from {start}"
        );
        assert_eq!(
            report.hashes_compared as u64, report.ticks_replayed,
            "{label}: every replayed tick must be verified"
        );
        assert_eq!(
            instrumented, report.ticks_replayed,
            "{label}: instrumentation must see every in-range tick"
        );
        if full {
            assert_eq!(
                report.world.state_hash(),
                final_hash,
                "{label}: replayed final state differs from the original"
            );
        }
    }

    // Each incident must replay through its own tick from the pinned
    // snapshot. Dedup on the rewind point: repeated incidents (e.g. a
    // wave of timeout evacuations) pin the same snapshot.
    let mut targets: Vec<(u64, u64)> = Vec::new();
    for incident in history.incidents() {
        assert!(
            incident.rewind_tick <= incident.tick,
            "{label}: rewind point after the incident"
        );
        match targets.iter_mut().find(|(r, _)| *r == incident.rewind_tick) {
            Some((_, end)) => *end = (*end).max(incident.tick + 1),
            None => targets.push((incident.rewind_tick, incident.tick + 1)),
        }
    }
    for (rewind, end) in targets {
        let end = end.min(last + 1);
        let report = history
            .resimulate(rewind..end, |_| {})
            .unwrap_or_else(|e| panic!("{label}: incident replay from tick {rewind} failed: {e}"));
        assert_eq!(report.started_from, rewind, "{label}: incident rewind");
        assert_eq!(
            report.hashes_compared as u64, report.ticks_replayed,
            "{label}: incident replay must verify every tick"
        );
    }
}

/// Records the scenario under all three engines, asserts the per-tick
/// hash streams are identical across them, and checks replays of each.
fn check_scenario(label: &str, config: SimConfig) -> Vec<WorldHistory> {
    let serial = record(config.clone(), EngineChoice::Serial);
    let parallel = record(config.clone(), EngineChoice::Parallel);
    let auto = record(config, EngineChoice::Auto);

    let reference = hash_stream(&serial);
    assert_eq!(
        reference,
        hash_stream(&parallel),
        "{label}: parallel hash stream diverges from serial"
    );
    assert_eq!(
        reference,
        hash_stream(&auto),
        "{label}: auto hash stream diverges from serial"
    );

    // Incidents are derived from the hash-identical runs, so they must
    // match tick-for-tick too.
    let pins = |h: &WorldHistory| -> Vec<(u64, IncidentKind)> {
        h.incidents().iter().map(|i| (i.tick, i.kind)).collect()
    };
    assert_eq!(pins(&serial), pins(&parallel), "{label}: incident pins");
    assert_eq!(pins(&serial), pins(&auto), "{label}: incident pins");

    for (engine, history) in [
        ("serial", &serial),
        ("parallel", &parallel),
        ("auto", &auto),
    ] {
        check_replays(&format!("{label}/{engine}"), history);
    }
    vec![serial, parallel, auto]
}

#[test]
fn plain_traffic_replays_bit_identically() {
    let mut config = SimConfig::default();
    config.duration = 90.0;
    config.density = 70.0;
    config.seed = 2024;
    check_scenario("plain", config);
}

#[test]
fn attack_scenario_replays_bit_identically() {
    let mut config = SimConfig::default();
    config.duration = 120.0;
    config.density = 60.0;
    config.seed = 77;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::V2,
        violation: ViolationKind::LaneDeviation,
        start: 50.0,
    });
    let histories = check_scenario("attack", config);
    // The detection path itself must be a captured rewind point.
    assert!(
        histories[0]
            .incidents()
            .iter()
            .any(|i| i.kind == IncidentKind::ViolationConfirmed),
        "attack: expected a ViolationConfirmed incident pin"
    );
}

#[test]
fn chaos_outage_scenario_replays_bit_identically() {
    let mut config = SimConfig::default();
    config.duration = 130.0;
    config.density = 60.0;
    config.seed = 41;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::V1,
        violation: ViolationKind::SuddenStop,
        start: 50.0,
    });
    config.im_outage = Some(ImOutage {
        start: 50.0,
        duration: 20.0,
    });
    let histories = check_scenario("chaos", config);
    // The outage forces reporters to time out and self-evacuate; each
    // wave is an auto-captured incident.
    assert!(
        histories[0]
            .incidents()
            .iter()
            .any(|i| i.kind == IncidentKind::BenignSelfEvacuation),
        "chaos: expected a BenignSelfEvacuation incident pin"
    );
}
