//! §IV-B2 (iii): the manager records false reporters "for future
//! reference" — a reporter caught three times loses standing.

use nwade_repro::aim::{ReservationScheduler, SchedulerConfig};
use nwade_repro::crypto::MockScheme;
use nwade_repro::geometry::Vec2;
use nwade_repro::intersection::{build, GeometryConfig, IntersectionKind};
use nwade_repro::nwade::messages::{IncidentReport, Observation};
use nwade_repro::nwade::{ManagerAction, NwadeConfig, NwadeManager};
use nwade_repro::traffic::VehicleId;
use std::sync::Arc;

fn manager() -> NwadeManager {
    let topo = Arc::new(build(
        IntersectionKind::FourWayCross,
        &GeometryConfig::default(),
    ));
    NwadeManager::new(
        topo.clone(),
        Box::new(ReservationScheduler::new(topo, SchedulerConfig::default())),
        Arc::new(MockScheme::from_seed(0)),
        NwadeConfig::default(),
    )
}

fn report(reporter: u64, suspect: u64) -> IncidentReport {
    IncidentReport {
        reporter: VehicleId::new(reporter),
        suspect: VehicleId::new(suspect),
        evidence: Observation {
            target: VehicleId::new(suspect),
            position: Vec2::new(5.0, 5.0),
            speed: 0.0,
            time: 1.0,
        },
        block_index: 0,
    }
}

#[test]
fn serial_false_reporters_lose_standing() {
    let mut m = manager();
    let watchers: Vec<VehicleId> = (10..16).map(VehicleId::new).collect();
    // Vehicle 0 cries wolf three times; honest watchers dismiss each.
    for round in 0..3u64 {
        let suspect = 100 + round;
        let actions = m.on_incident_report(&report(0, suspect), &watchers, round as f64);
        let [ManagerAction::PollWatchers { request_id, .. }] = actions.as_slice() else {
            panic!("verification starts while the reporter has standing");
        };
        let rid = *request_id;
        let mut done = Vec::new();
        for _ in 0..4 {
            done =
                m.on_verify_response(rid, VehicleId::new(suspect), true, false, &[], round as f64);
            if !done.is_empty() {
                break;
            }
        }
        assert!(
            done.iter()
                .any(|a| matches!(a, ManagerAction::Dismiss { .. })),
            "round {round} dismissed"
        );
    }
    assert_eq!(m.false_report_count(VehicleId::new(0)), 3);
    // The fourth cry is ignored outright.
    let actions = m.on_incident_report(&report(0, 200), &watchers, 10.0);
    assert!(actions.is_empty(), "discredited reporter is ignored");
    // An honest reporter still gets service.
    let actions = m.on_incident_report(&report(1, 200), &watchers, 11.0);
    assert!(matches!(
        actions.as_slice(),
        [ManagerAction::PollWatchers { .. }]
    ));
}
