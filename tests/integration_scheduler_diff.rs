//! Differential test for the slot-seeking scheduler: the seek search is
//! a pure strategy over the same probe grid the retained linear loop
//! walks, so a simulation run with `probe_scheduler` on and off must
//! produce the identical `SimReport` — plans, accidents, evacuations,
//! network traffic, everything. Three scenarios mirror the tick-engine
//! differential suite: plain traffic, an unfolding attack, and the
//! chaos outage harness.

use nwade_repro::nwade::attack::{AttackSetting, ViolationKind};
use nwade_repro::sim::{AttackPlan, ImOutage, SimConfig, SimReport, Simulation};

fn run_variant(mut config: SimConfig, probe: bool) -> SimReport {
    config.probe_scheduler = probe;
    Simulation::new(config).run()
}

fn assert_reports_identical(label: &str, a: &SimReport, b: &SimReport) {
    assert_eq!(a.metrics.spawned, b.metrics.spawned, "{label}: spawned");
    assert_eq!(a.metrics.exited, b.metrics.exited, "{label}: exited");
    assert_eq!(
        a.metrics.exited_benign, b.metrics.exited_benign,
        "{label}: exited_benign"
    );
    assert_eq!(
        a.metrics.accidents, b.metrics.accidents,
        "{label}: accidents"
    );
    assert_eq!(
        a.metrics.blocks_broadcast, b.metrics.blocks_broadcast,
        "{label}: blocks_broadcast"
    );
    assert_eq!(
        a.metrics.plans_scheduled, b.metrics.plans_scheduled,
        "{label}: plans_scheduled"
    );
    assert_eq!(
        a.metrics.benign_self_evacuations, b.metrics.benign_self_evacuations,
        "{label}: benign_self_evacuations"
    );
    assert_eq!(
        a.metrics.violation_confirmed, b.metrics.violation_confirmed,
        "{label}: violation_confirmed"
    );
    assert_eq!(
        a.metrics.im_timeout_evacuations, b.metrics.im_timeout_evacuations,
        "{label}: im_timeout_evacuations"
    );
    assert_eq!(
        a.metrics.readmitted_after_outage, b.metrics.readmitted_after_outage,
        "{label}: readmitted_after_outage"
    );
    assert_eq!(
        a.metrics.network.total_transmissions(),
        b.metrics.network.total_transmissions(),
        "{label}: network transmissions"
    );
    assert_eq!(
        a.metrics.invariants.total(),
        b.metrics.invariants.total(),
        "{label}: invariant violations"
    );
}

fn check_scenario(label: &str, config: SimConfig) {
    let probe = run_variant(config.clone(), true);
    let seek = run_variant(config, false);
    assert_reports_identical(label, &probe, &seek);
}

#[test]
fn plain_traffic_identical_across_searches() {
    let mut config = SimConfig::default();
    config.duration = 90.0;
    config.density = 70.0;
    config.seed = 2024;
    check_scenario("plain", config);
}

#[test]
fn attack_scenario_identical_across_searches() {
    let mut config = SimConfig::default();
    config.duration = 120.0;
    config.density = 60.0;
    config.seed = 77;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::V2,
        violation: ViolationKind::LaneDeviation,
        start: 50.0,
    });
    check_scenario("attack", config);
}

/// The chaos scenario: an attack unfolds while the manager goes dark,
/// reporters time out and self-evacuate, then the restart re-admits the
/// fleet — the evacuation planner and FCFS fallback both search too.
#[test]
fn chaos_outage_scenario_identical_across_searches() {
    let mut config = SimConfig::default();
    config.duration = 130.0;
    config.density = 60.0;
    config.seed = 41;
    config.attack = Some(AttackPlan {
        setting: AttackSetting::V1,
        violation: ViolationKind::SuddenStop,
        start: 50.0,
    });
    config.im_outage = Some(ImOutage {
        start: 50.0,
        duration: 20.0,
    });
    check_scenario("chaos", config);
}
