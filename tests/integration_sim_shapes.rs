//! End-to-end shape assertions: the qualitative results the paper's
//! evaluation reports must hold in this reproduction.
//!
//! These use short runs and single rounds so the suite stays fast in
//! debug builds; the `expgen` harness runs the full protocol.

use nwade_repro::nwade::attack::{AttackSetting, ViolationKind};
use nwade_repro::sim::{AttackPlan, SchedulerChoice, SimConfig, Simulation};

fn attacked(setting: AttackSetting, seed: u64) -> SimConfig {
    let mut config = SimConfig::default();
    config.duration = 150.0;
    config.seed = seed;
    config.attack = Some(AttackPlan {
        setting,
        violation: ViolationKind::SuddenStop,
        start: 60.0,
    });
    config
}

#[test]
fn benign_runs_have_no_alarms_and_no_accidents() {
    let mut config = SimConfig::default();
    config.duration = 120.0;
    config.seed = 21;
    let r = Simulation::new(config).run();
    assert_eq!(r.metrics.accidents, 0);
    assert_eq!(r.metrics.benign_self_evacuations, 0);
    assert!(
        r.metrics.exited > 30,
        "traffic flowed: {}",
        r.metrics.exited
    );
    assert!(r.metrics.blocks_broadcast > 30);
}

#[test]
fn violation_detected_with_benign_manager() {
    let r = Simulation::new(attacked(AttackSetting::V1, 31)).run();
    assert!(r.violation_detected(), "V1 detection (Fig. 4 shape)");
    let latency = r.detection_latency().expect("latency recorded");
    assert!(
        latency < 10.0,
        "detection within seconds of the deviation, got {latency:.1}s"
    );
}

#[test]
fn violation_detected_with_malicious_manager() {
    let r = Simulation::new(attacked(AttackSetting::ImV2, 32)).run();
    assert!(
        r.violation_detected(),
        "IM_V2: benign vehicles must escalate globally"
    );
    assert!(
        r.metrics.benign_self_evacuations > 0,
        "shielded attacker forces self-evacuations"
    );
}

#[test]
fn corrupted_block_always_caught() {
    let r = Simulation::new(attacked(AttackSetting::Im, 33)).run();
    assert!(
        r.metrics.corrupted_block_detected.is_some(),
        "Table II type B (real): blockchain verification catches it"
    );
}

#[test]
fn type_b_false_claims_rebutted_never_triggering() {
    let r = Simulation::new(attacked(AttackSetting::V3, 34)).run();
    assert!(r.false_alarm_b_detected(), "claims rebutted (Table II)");
    assert!(
        !r.false_alarm_b_triggered(),
        "false conflicting-plan claims never trigger evacuations"
    );
}

#[test]
fn type_a_false_claims_dismissed_with_benign_manager() {
    let r = Simulation::new(attacked(AttackSetting::V2, 35)).run();
    assert!(
        r.false_alarm_a_detected(),
        "the two-group vote dismisses the framed vehicle"
    );
    assert!(!r.false_alarm_a_triggered());
}

#[test]
fn nwade_throughput_overhead_is_negligible() {
    // Fig. 8's shape: ±10% at matched seeds.
    let mut config = SimConfig::default();
    config.duration = 150.0;
    config.seed = 36;
    config.density = 60.0;
    let with = Simulation::new(config.clone())
        .run()
        .metrics
        .throughput_per_minute();
    config.nwade_enabled = false;
    let without = Simulation::new(config)
        .run()
        .metrics
        .throughput_per_minute();
    let overhead = (without - with).abs() / without.max(1.0);
    assert!(
        overhead < 0.10,
        "NWADE overhead {:.1}% (with {with:.1}, without {without:.1})",
        overhead * 100.0
    );
}

#[test]
fn reservation_scheduler_beats_fcfs_baseline() {
    let mut config = SimConfig::default();
    config.duration = 150.0;
    config.seed = 37;
    config.density = 100.0;
    let reservation = Simulation::new(config.clone()).run().metrics.exited;
    config.scheduler = SchedulerChoice::Fcfs;
    let fcfs = Simulation::new(config).run().metrics.exited;
    assert!(
        reservation > fcfs,
        "reservation ({reservation}) must out-serve FCFS ({fcfs}) at high load"
    );
}

#[test]
fn all_five_intersections_simulate_cleanly() {
    for kind in nwade_repro::intersection::IntersectionKind::ALL {
        let mut config = SimConfig::default();
        config.kind = kind;
        config.duration = 90.0;
        config.density = 40.0;
        config.seed = 38;
        let r = Simulation::new(config).run();
        assert!(r.metrics.exited > 0, "{kind}: traffic flowed");
        assert_eq!(r.metrics.accidents, 0, "{kind}: no accidents unattacked");
        assert_eq!(
            r.metrics.benign_self_evacuations, 0,
            "{kind}: no false alarms"
        );
    }
}
