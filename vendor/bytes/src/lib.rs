//! Offline vendored stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses — `BytesMut` plus the
//! big-endian `BufMut` putters for encoding, and the non-panicking
//! `Buf::try_get_*` getters (over `&[u8]` cursors) for decoding —
//! backed by a plain `Vec<u8>`.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the buffer into its backing vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Freezes into an immutable byte vector (stand-in for `Bytes`).
    pub fn freeze(self) -> Vec<u8> {
        self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.buf
    }
}

/// Big-endian append-only writer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Error returned by the `Buf::try_get_*` getters when the source has
/// fewer bytes than the read requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TryGetError {
    /// Bytes the read needed.
    pub requested: usize,
    /// Bytes the source still had.
    pub available: usize,
}

impl std::fmt::Display for TryGetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tried to read {} bytes but only {} remain",
            self.requested, self.available
        )
    }
}

impl std::error::Error for TryGetError {}

/// Big-endian consuming reader; the mirror of [`BufMut`].
///
/// Every getter is total: short input yields [`TryGetError`], never a
/// panic, so decoders built on it are safe on hostile/truncated bytes.
/// Reads advance the cursor only on success.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `dst.len()` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`TryGetError`] when fewer than `dst.len()` bytes remain.
    fn try_copy_to_slice(&mut self, dst: &mut [u8]) -> Result<(), TryGetError>;

    /// `true` when nothing is left to read.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`TryGetError`] on empty input.
    fn try_get_u8(&mut self) -> Result<u8, TryGetError> {
        let mut b = [0u8; 1];
        self.try_copy_to_slice(&mut b)?;
        Ok(b[0])
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`TryGetError`] on short input.
    fn try_get_u16(&mut self) -> Result<u16, TryGetError> {
        let mut b = [0u8; 2];
        self.try_copy_to_slice(&mut b)?;
        Ok(u16::from_be_bytes(b))
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`TryGetError`] on short input.
    fn try_get_u32(&mut self) -> Result<u32, TryGetError> {
        let mut b = [0u8; 4];
        self.try_copy_to_slice(&mut b)?;
        Ok(u32::from_be_bytes(b))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`TryGetError`] on short input.
    fn try_get_u64(&mut self) -> Result<u64, TryGetError> {
        let mut b = [0u8; 8];
        self.try_copy_to_slice(&mut b)?;
        Ok(u64::from_be_bytes(b))
    }

    /// Reads a big-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`TryGetError`] on short input.
    fn try_get_i64(&mut self) -> Result<i64, TryGetError> {
        let mut b = [0u8; 8];
        self.try_copy_to_slice(&mut b)?;
        Ok(i64::from_be_bytes(b))
    }

    /// Reads a big-endian IEEE-754 `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`TryGetError`] on short input.
    fn try_get_f64(&mut self) -> Result<f64, TryGetError> {
        let mut b = [0u8; 8];
        self.try_copy_to_slice(&mut b)?;
        Ok(f64::from_be_bytes(b))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn try_copy_to_slice(&mut self, dst: &mut [u8]) -> Result<(), TryGetError> {
        if self.len() < dst.len() {
            return Err(TryGetError {
                requested: dst.len(),
                available: self.len(),
            });
        }
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut, TryGetError};

    #[test]
    fn big_endian_layout() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u16(0x0102);
        b.put_u64(0x0304_0506_0708_090A);
        b.put_f64(1.0);
        b.put_slice(&[0xFF]);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(&b[2..10], &[3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(&b[10..18], &1.0f64.to_be_bytes());
        assert_eq!(b[18], 0xFF);
        assert_eq!(b.len(), 19);
        assert_eq!(b.to_vec().len(), 19);
    }

    #[test]
    fn getters_mirror_putters() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(u64::MAX - 1);
        b.put_i64(-42);
        b.put_f64(-1.5);
        b.put_slice(b"xyz");

        let mut cur: &[u8] = &b;
        assert_eq!(cur.try_get_u8(), Ok(7));
        assert_eq!(cur.try_get_u16(), Ok(0x0102));
        assert_eq!(cur.try_get_u32(), Ok(0xDEAD_BEEF));
        assert_eq!(cur.try_get_u64(), Ok(u64::MAX - 1));
        assert_eq!(cur.try_get_i64(), Ok(-42));
        assert_eq!(cur.try_get_f64(), Ok(-1.5));
        let mut tail = [0u8; 3];
        cur.try_copy_to_slice(&mut tail).unwrap();
        assert_eq!(&tail, b"xyz");
        assert!(!cur.has_remaining());
    }

    #[test]
    fn short_reads_fail_without_consuming() {
        let bytes = [1u8, 2, 3];
        let mut cur: &[u8] = &bytes;
        assert_eq!(
            cur.try_get_u32(),
            Err(TryGetError {
                requested: 4,
                available: 3,
            })
        );
        // The failed read left the cursor untouched.
        assert_eq!(cur.remaining(), 3);
        assert_eq!(cur.try_get_u16(), Ok(0x0102));
        assert_eq!(cur.try_get_u8(), Ok(3));
        assert!(cur.try_get_u8().is_err());
    }
}
