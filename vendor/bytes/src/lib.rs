//! Offline vendored stand-in for the `bytes` crate.
//!
//! Implements the encoding-side subset the workspace uses — `BytesMut`
//! plus the big-endian `BufMut` putters — backed by a plain `Vec<u8>`.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the buffer into its backing vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Freezes into an immutable byte vector (stand-in for `Bytes`).
    pub fn freeze(self) -> Vec<u8> {
        self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.buf
    }
}

/// Big-endian append-only writer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{BufMut, BytesMut};

    #[test]
    fn big_endian_layout() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u16(0x0102);
        b.put_u64(0x0304_0506_0708_090A);
        b.put_f64(1.0);
        b.put_slice(&[0xFF]);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(&b[2..10], &[3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(&b[10..18], &1.0f64.to_be_bytes());
        assert_eq!(b[18], 0xFF);
        assert_eq!(b.len(), 19);
        assert_eq!(b.to_vec().len(), 19);
    }
}
