//! Offline vendored stand-in for `criterion`.
//!
//! Provides the group/bench/iter API surface the workspace's benches use,
//! with a plain wall-clock measurement loop instead of criterion's
//! statistical machinery. Each benchmark runs a configurable number of
//! samples and prints mean/min/max per iteration.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let group_name = name.to_string();
        run_bench(&group_name, None, 10, f);
        self
    }
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare parameter id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_bench(&self.name, Some(&id.to_string()), self.sample_size, f);
        self
    }

    /// Benchmarks `f` with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&self.name, Some(&id.to_string()), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to time the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive so the work is not
    /// optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            let out = routine();
            black_box(out);
        }
        let elapsed = start.elapsed() / self.iters_per_sample as u32;
        self.samples.push(elapsed);
    }
}

/// Opaque value sink (best-effort without unsafe or nightly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, id: Option<&str>, samples: usize, mut f: F) {
    let label = match id {
        Some(id) => format!("{group}/{id}"),
        None => group.to_string(),
    };
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        iters_per_sample: 1,
    };
    for _ in 0..samples {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
        b.samples.len()
    );
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (e.g. --bench); accept and ignore.
            let _args: Vec<String> = ::std::env::args().collect();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
