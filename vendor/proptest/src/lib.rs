//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, integer/float
//! range strategies, tuples, [`Just`], [`prop_oneof!`] unions,
//! [`collection::vec`], [`any`], `prop_assert*`/`prop_assume!`, and
//! [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is no shrinking: each test function draws
//! `cases` inputs from a generator seeded deterministically from the test
//! name, so failures are stable across runs and machines.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

/// Deterministic splitmix64 source feeding all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a stable FNV-1a hash of `name` (the test function).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - u64::MAX.wrapping_rem(n);
        loop {
            let v = self.next_u64();
            if v < zone || zone == 0 {
                return v % n;
            }
        }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    items: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `items` must be non-empty.
    pub fn new(items: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!items.is_empty(), "prop_oneof! needs at least one arm");
        Union { items }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.items.len() as u64) as usize;
        self.items[i].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )+
    };
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.next_f64() * (end - start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+
    };
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Whole-domain generation, the target of [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty length range");
            start + rng.below((end - start + 1) as u64) as usize
        }
    }

    /// Vectors of values from `element`, with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines deterministic property tests.
///
/// Accepts an optional leading `#![proptest_config(...)]` followed by any
/// number of `fn name(arg in strategy, ...) { body }` items, each of which
/// becomes an ordinary test function running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $($(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)));
                let mut __accepted: u32 = 0;
                let mut __drawn: u32 = 0;
                while __accepted < __cfg.cases {
                    __drawn += 1;
                    assert!(
                        __drawn <= __cfg.cases.saturating_mul(50).max(500),
                        "prop_assume! rejected too many cases in {}",
                        stringify!($name),
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => { __accepted += 1; }
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {}", __accepted, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts inside a proptest body; failure reports the case inputs' seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {} == {} ({:?} vs {:?})",
                    stringify!($left), stringify!($right), l, r)));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+)));
        }
    }};
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current case, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Coin {
        Heads,
        Tails,
    }

    fn coins() -> impl Strategy<Value = Coin> {
        prop_oneof![Just(Coin::Heads), Just(Coin::Tails)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0..4.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..4.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn oneof_and_map_compose(
            c in coins(),
            doubled in (0u32..50).prop_map(|n| n * 2),
        ) {
            prop_assert!(matches!(c, Coin::Heads | Coin::Tails));
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn tuples_sample_elementwise(t in (0u64..5, 0.0..1.0f64, 1usize..3)) {
            prop_assert!(t.0 < 5);
            prop_assert!((0.0..1.0).contains(&t.1));
            prop_assert!(t.2 >= 1 && t.2 < 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let s = 0u64..1000;
        let va = s.clone().sample(&mut a);
        let vb = s.sample(&mut b);
        assert_eq!(va, vb);
    }
}
