//! Offline vendored stand-in for the `rand` 0.8 crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the small slice of the `rand` API it actually uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`RngCore::fill_bytes`], [`SeedableRng`], and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through splitmix64 — fast, well
//! distributed, and fully deterministic for a given seed, which is all the
//! simulation needs (it is *not* cryptographically secure; nothing in the
//! workspace relies on CSPRNG output for security, the RSA keygen only
//! needs candidate bytes to test for primality).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution in real `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {
        $(impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased draw from `[0, n)` by rejection of the biased tail.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - u64::MAX.wrapping_rem(n);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % n;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),+) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-domain u64 inclusive range.
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
        )+
    };
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        start + u * (end - start)
    }
}

/// High-level convenience methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via splitmix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro; remix.
                let mut sm = 0x6A09_E667_F3BC_C909;
                for word in s.iter_mut() {
                    *word = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0..4.0f64);
            assert!((-2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn zero_seed_is_escaped() {
        let mut r = StdRng::from_seed([0u8; 32]);
        assert_ne!(r.gen::<u64>(), 0, "all-zero state must be remixed");
    }
}
