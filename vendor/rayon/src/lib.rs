//! Offline vendored stand-in implementing the subset of the rayon API
//! this workspace uses: a scoped fork-join pool built on
//! `std::thread::scope`.
//!
//! The real rayon keeps a global work-stealing pool; this stand-in
//! spawns OS threads per scope instead. Callers here fan out a handful
//! of coarse chunks per scope (one per hardware thread), so thread
//! startup cost is negligible against the chunk work, and the semantics
//! match the subset used: tasks may borrow from the enclosing stack
//! frame, every task finishes before `scope` returns, and a panicking
//! task propagates its panic to the caller.

#![forbid(unsafe_code)]

/// Number of worker threads a fan-out should target: the machine's
/// available parallelism (1 when it cannot be determined).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A scope in which borrowed tasks can be spawned; mirrors
/// `rayon::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope; it is
    /// joined before [`scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(f);
    }
}

/// Creates a fork-join scope: all tasks spawned inside have completed
/// when this returns. A panic in any task resumes on the caller.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_write_disjoint_slots_and_join() {
        let mut out = vec![0usize; 8];
        scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
        });
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = scope(|_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn at_least_one_thread_reported() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn panics_propagate() {
        let r = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|| panic!("worker died"));
            });
        });
        assert!(r.is_err());
    }
}
