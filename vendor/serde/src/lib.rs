//! Offline vendored stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` as forward-looking
//! markers but never feeds the types to an actual serializer (there is no
//! `serde_json` dependency), so marker traits are sufficient. The derive
//! macros in the sibling `serde_derive` crate emit empty impls.

#![forbid(unsafe_code)]

/// Marker for types declared serializable.
pub trait Serialize {}

/// Marker for types declared deserializable.
pub trait Deserialize<'de>: Sized {}

/// Marker for seed-free deserialization (blanket, as in real serde).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
