//! Offline vendored stand-in for `serde_derive`.
//!
//! Emits empty marker-trait impls (`impl serde::Serialize for T {}`) for
//! the derived type. Supports plain (non-generic) structs and enums,
//! which covers every derive site in the workspace; a generic type
//! produces a clear compile error rather than silently-wrong code.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the struct/enum a derive is attached to, or an
/// error message when the item is generic or unrecognized.
fn derived_type_name(input: &TokenStream) -> Result<String, String> {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(tt) = tokens.next() {
        let TokenTree::Ident(ident) = &tt else {
            continue;
        };
        let kw = ident.to_string();
        if kw != "struct" && kw != "enum" && kw != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            return Err("expected a type name after `struct`/`enum`".into());
        };
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '<' {
                return Err(format!(
                    "vendored serde_derive does not support generic type `{name}`"
                ));
            }
        }
        return Ok(name.to_string());
    }
    Err("vendored serde_derive found no struct or enum".into())
}

fn emit(input: TokenStream, make_impl: impl Fn(&str) -> String) -> TokenStream {
    match derived_type_name(&input) {
        Ok(name) => make_impl(&name).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("generated error parses"),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl ::serde::Serialize for {name} {{}}")
    })
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    })
}
